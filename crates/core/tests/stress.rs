//! Concurrency stress tests: many threads, tiny pools, every migration
//! path under pressure, with continuous invariant checking.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use spitfire_core::{AccessIntent, BufferManager, BufferManagerConfig, MigrationPolicy, PageId};
use spitfire_device::{PersistenceTracking, TimeScale};

const PAGE: usize = 1024;

fn manager(dram_pages: usize, nvm_pages: usize, policy: MigrationPolicy) -> Arc<BufferManager> {
    let config = BufferManagerConfig::builder()
        .page_size(PAGE)
        .dram_capacity(dram_pages * PAGE)
        .nvm_capacity(nvm_pages * (PAGE + 64))
        .policy(policy)
        .persistence(PersistenceTracking::Counters)
        .time_scale(TimeScale::ZERO)
        .build()
        .unwrap();
    Arc::new(BufferManager::new(config).unwrap())
}

/// Each page holds a 8-byte sequence number replicated 8 times; any torn
/// or stale mixture is detected by the reader.
fn write_stamp(bm: &BufferManager, pid: PageId, stamp: u64) {
    let g = bm.fetch(pid, AccessIntent::Write).unwrap();
    let mut buf = [0u8; 64];
    for chunk in buf.chunks_exact_mut(8) {
        chunk.copy_from_slice(&stamp.to_le_bytes());
    }
    g.write(0, &buf).unwrap();
}

fn read_stamp(bm: &BufferManager, pid: PageId) -> u64 {
    let g = bm.fetch(pid, AccessIntent::Read).unwrap();
    let mut buf = [0u8; 64];
    g.read(0, &mut buf).unwrap();
    let first = u64::from_le_bytes(buf[..8].try_into().unwrap());
    for chunk in buf.chunks_exact(8) {
        assert_eq!(
            u64::from_le_bytes(chunk.try_into().unwrap()),
            first,
            "torn page read"
        );
    }
    first
}

fn storm(policy: MigrationPolicy, dram: usize, nvm: usize) {
    let bm = manager(dram, nvm, policy);
    const PAGES: usize = 48;
    const WRITERS: usize = 4;
    const READERS: usize = 4;
    let pids: Arc<Vec<PageId>> =
        Arc::new((0..PAGES).map(|_| bm.allocate_page().unwrap()).collect());
    for pid in pids.iter() {
        write_stamp(&bm, *pid, 0);
    }
    // Writer t owns pages where page % WRITERS == t: per-page stamps are
    // monotone, so readers can check freshness is never violated backwards.
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..WRITERS)
        .map(|t| {
            let bm = Arc::clone(&bm);
            let pids = Arc::clone(&pids);
            std::thread::spawn(move || {
                for round in 1..=60u64 {
                    for (i, pid) in pids.iter().enumerate() {
                        if i % WRITERS == t {
                            write_stamp(&bm, *pid, round);
                        }
                    }
                }
            })
        })
        .collect();
    let readers: Vec<_> = (0..READERS)
        .map(|t| {
            let bm = Arc::clone(&bm);
            let pids = Arc::clone(&pids);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last_seen = vec![0u64; PAGES];
                let mut i = t;
                while !stop.load(Ordering::Relaxed) {
                    i = (i + 7) % PAGES;
                    let stamp = read_stamp(&bm, pids[i]);
                    assert!(
                        stamp >= last_seen[i],
                        "page {i} went backwards: {} -> {stamp}",
                        last_seen[i]
                    );
                    last_seen[i] = stamp;
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }
    // Final state: every page at its writer's last stamp.
    for pid in pids.iter() {
        assert_eq!(read_stamp(&bm, *pid), 60);
    }
}

#[test]
fn storm_lazy_three_tier() {
    storm(MigrationPolicy::lazy(), 6, 12);
}

#[test]
fn storm_eager_three_tier() {
    storm(MigrationPolicy::eager(), 6, 12);
}

#[test]
fn storm_hymem_policy() {
    storm(MigrationPolicy::hymem(), 6, 12);
}

#[test]
fn storm_dram_ssd() {
    storm(MigrationPolicy::eager(), 8, 0);
}

#[test]
fn storm_nvm_ssd() {
    storm(MigrationPolicy::lazy(), 0, 12);
}

#[test]
fn storm_with_concurrent_flusher() {
    let bm = manager(6, 12, MigrationPolicy::lazy());
    let pids: Arc<Vec<PageId>> = Arc::new((0..32).map(|_| bm.allocate_page().unwrap()).collect());
    for pid in pids.iter() {
        write_stamp(&bm, *pid, 0);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let flusher = {
        let bm = Arc::clone(&bm);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                bm.flush_all_dirty().unwrap();
                std::thread::yield_now();
            }
        })
    };
    let workers: Vec<_> = (0..4usize)
        .map(|t| {
            let bm = Arc::clone(&bm);
            let pids = Arc::clone(&pids);
            std::thread::spawn(move || {
                for round in 1..=80u64 {
                    for (i, pid) in pids.iter().enumerate() {
                        if i % 4 == t {
                            write_stamp(&bm, *pid, round);
                            assert_eq!(read_stamp(&bm, *pid), round);
                        }
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    flusher.join().unwrap();
    for pid in pids.iter() {
        assert_eq!(read_stamp(&bm, *pid), 80);
    }
}

/// Repeated single-thread hits on a resident page must be served by the
/// lock-free fast path: after the page is resident, fetches add to
/// `fetch_fast` and the slow-path fallback counter stays flat. This is
/// the "zero mutex acquisitions on the uncontended hit path" acceptance
/// check, observed through the fallback counter (every slow-path entry
/// increments it).
#[test]
fn resident_hits_take_fast_path_only() {
    // Eager policy: the write places the page in DRAM and every later
    // coin is degenerate (1.0), so no probabilistic migration can sneak a
    // slow-path fetch into the measured loop.
    let bm = manager(8, 16, MigrationPolicy::eager());
    let pid = bm.allocate_page().unwrap();
    write_stamp(&bm, pid, 7);
    assert_eq!(read_stamp(&bm, pid), 7);
    let before = bm.metrics();
    for _ in 0..1_000 {
        assert_eq!(read_stamp(&bm, pid), 7);
    }
    let d = bm.metrics().delta(&before);
    assert_eq!(d.fetch_fast, 1_000, "every hit should be lock-free");
    assert_eq!(d.fetch_fallbacks, 0, "no hit should touch the mutex path");
    assert_eq!(d.pin_restarts, 0);
    bm.assert_quiescent();
}

/// NVM-resident pages (no DRAM tier) are also served lock-free once
/// resident.
#[test]
fn nvm_resident_hits_take_fast_path() {
    let bm = manager(0, 16, MigrationPolicy::lazy());
    let pid = bm.allocate_page().unwrap();
    write_stamp(&bm, pid, 3);
    assert_eq!(read_stamp(&bm, pid), 3);
    let before = bm.metrics();
    for _ in 0..500 {
        assert_eq!(read_stamp(&bm, pid), 3);
    }
    let d = bm.metrics().delta(&before);
    assert_eq!(d.fetch_fast, 500);
    assert_eq!(d.fetch_fallbacks, 0);
    bm.assert_quiescent();
}

/// Many threads hammer a working set that overflows DRAM, forcing
/// continuous optimistic pins, pin restarts, evictions, promotions, and
/// write-backs to interleave; afterwards the pin words must agree with
/// the copy states everywhere and all content must be intact.
#[test]
fn optimistic_pins_race_evictions_and_migrations() {
    let bm = manager(5, 10, MigrationPolicy::eager());
    const PAGES: usize = 40;
    const THREADS: usize = 8;
    let pids: Arc<Vec<PageId>> =
        Arc::new((0..PAGES).map(|_| bm.allocate_page().unwrap()).collect());
    for (i, pid) in pids.iter().enumerate() {
        write_stamp(&bm, *pid, i as u64);
    }
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let bm = Arc::clone(&bm);
            let pids = Arc::clone(&pids);
            std::thread::spawn(move || {
                let mut i = t;
                for step in 0..4_000usize {
                    i = (i * 31 + step + 1) % PAGES;
                    if t % 2 == 0 {
                        // Readers verify content through whatever path
                        // (fast or slow) serves them.
                        let stamp = read_stamp(&bm, pids[i]);
                        assert!(stamp as usize % PAGES < PAGES);
                    } else {
                        write_stamp(&bm, pids[i], (i + PAGES) as u64);
                    }
                    if step % 512 == 0 {
                        let _ = bm.flush_page(pids[i]);
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let m = bm.metrics();
    assert!(m.fetch_fast > 0, "fast path never fired under load");
    // No guard outstanding: every word must be drained and consistent
    // with its slot.
    bm.assert_quiescent();
    for pid in pids.iter() {
        let _ = read_stamp(&bm, *pid);
    }
    bm.assert_quiescent();
}

/// Crash simulation invalidates per-thread descriptor caches: fetches
/// after the crash must not resurrect pre-crash descriptors or pins.
#[test]
fn descriptor_cache_survives_crash_epoch() {
    let config = BufferManagerConfig::builder()
        .page_size(PAGE)
        .dram_capacity(0)
        .nvm_capacity(16 * (PAGE + 64))
        .policy(MigrationPolicy::lazy())
        .persistence(PersistenceTracking::Full)
        .time_scale(TimeScale::ZERO)
        .build()
        .unwrap();
    let bm = BufferManager::new(config).unwrap();
    let pid = bm.allocate_page().unwrap();
    write_stamp(&bm, pid, 42);
    // Hit it fast a few times so the descriptor is cached on this thread.
    for _ in 0..10 {
        assert_eq!(read_stamp(&bm, pid), 42);
    }
    bm.simulate_crash();
    let recovered = bm.recover_nvm_buffer();
    assert_eq!(recovered, vec![pid]);
    // Fetches re-resolve through the new epoch; content is the recovered
    // NVM image, and the pin protocol stays balanced.
    for _ in 0..10 {
        assert_eq!(read_stamp(&bm, pid), 42);
    }
    bm.assert_quiescent();
}

#[test]
fn two_tier_nvm_ssd_crash_recovery() {
    let config = BufferManagerConfig::builder()
        .page_size(PAGE)
        .dram_capacity(0)
        .nvm_capacity(16 * (PAGE + 64))
        .policy(MigrationPolicy::lazy())
        .persistence(PersistenceTracking::Full)
        .time_scale(TimeScale::ZERO)
        .build()
        .unwrap();
    let bm = BufferManager::new(config).unwrap();
    let pids: Vec<PageId> = (0..8).map(|_| bm.allocate_page().unwrap()).collect();
    for (i, pid) in pids.iter().enumerate() {
        write_stamp(&bm, *pid, i as u64 + 1);
    }
    bm.simulate_crash();
    let recovered = bm.recover_nvm_buffer();
    assert_eq!(recovered.len(), 8);
    for (i, pid) in pids.iter().enumerate() {
        assert_eq!(read_stamp(&bm, *pid), i as u64 + 1);
    }
}

#[test]
fn memory_mode_storm() {
    let config = BufferManagerConfig::builder()
        .page_size(PAGE)
        .memory_mode(true)
        .dram_capacity(4 * PAGE)
        .nvm_capacity(16 * PAGE)
        .time_scale(TimeScale::ZERO)
        .build()
        .unwrap();
    let bm = Arc::new(BufferManager::new(config).unwrap());
    let pids: Arc<Vec<PageId>> = Arc::new((0..32).map(|_| bm.allocate_page().unwrap()).collect());
    for pid in pids.iter() {
        write_stamp(&bm, *pid, 0);
    }
    let workers: Vec<_> = (0..4usize)
        .map(|t| {
            let bm = Arc::clone(&bm);
            let pids = Arc::clone(&pids);
            std::thread::spawn(move || {
                for round in 1..=40u64 {
                    for (i, pid) in pids.iter().enumerate() {
                        if i % 4 == t {
                            write_stamp(&bm, *pid, round);
                        } else {
                            let _ = read_stamp(&bm, pids[i]);
                        }
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let (hits, misses) = bm.memory_mode_cache().unwrap();
    assert!(hits + misses > 0);
}

#[test]
fn fine_grained_storm_with_eviction() {
    // Mini pages need 16 granules + header per slab, so use 4 KB pages.
    let fg_page = 4096;
    let config = BufferManagerConfig::builder()
        .page_size(fg_page)
        .dram_capacity(4 * fg_page)
        .nvm_capacity(48 * (fg_page + 64))
        .policy(MigrationPolicy::eager())
        .fine_grained(64)
        .mini_pages(true)
        .time_scale(TimeScale::ZERO)
        .build()
        .unwrap();
    let bm = Arc::new(BufferManager::new(config).unwrap());
    let pids: Arc<Vec<PageId>> = Arc::new((0..32).map(|_| bm.allocate_page().unwrap()).collect());
    for pid in pids.iter() {
        // Seed via NVM so promotions create fine-grained copies.
        let _ = bm.fetch(*pid, AccessIntent::Read).unwrap();
        write_stamp(&bm, *pid, 0);
    }
    let workers: Vec<_> = (0..4usize)
        .map(|t| {
            let bm = Arc::clone(&bm);
            let pids = Arc::clone(&pids);
            std::thread::spawn(move || {
                for round in 1..=30u64 {
                    for (i, pid) in pids.iter().enumerate() {
                        if i % 4 == t {
                            write_stamp(&bm, *pid, round);
                            assert_eq!(read_stamp(&bm, *pid), round);
                        }
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    for pid in pids.iter() {
        assert_eq!(read_stamp(&bm, *pid), 30);
    }
}
