//! Integration tests for the background maintenance service: watermark
//! pre-eviction, backpressure fallback under injected faults, crash
//! interaction, and fetch-vs-worker races.

use std::sync::Arc;
use std::time::{Duration, Instant};

use spitfire_core::{
    BufferManager, BufferManagerConfig, MaintenanceConfig, MigrationPolicy, PageId,
};
use spitfire_device::{
    DeviceKind, FaultInjector, FaultKind, FaultOp, FaultPlan, FaultRule, PersistenceTracking,
    TimeScale, Trigger,
};

const PAGE: usize = 4096;
const DRAM_FRAMES: usize = 4;
const NVM_FRAMES: usize = 8;

fn manager(maintenance: MaintenanceConfig, policy: MigrationPolicy) -> Arc<BufferManager> {
    let config = BufferManagerConfig::builder()
        .page_size(PAGE)
        .dram_capacity(DRAM_FRAMES * PAGE)
        .nvm_capacity(NVM_FRAMES * (PAGE + 64))
        .policy(policy)
        .persistence(PersistenceTracking::Full)
        .time_scale(TimeScale::ZERO)
        .maintenance(maintenance)
        .build()
        .unwrap();
    Arc::new(BufferManager::new(config).unwrap())
}

fn fill(bm: &BufferManager, pid: PageId, byte: u8) {
    let g = bm.fetch_write(pid).unwrap();
    g.write(0, &vec![byte; PAGE]).unwrap();
}

fn wait_for(what: &str, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Every write on every device fails fatally: maintenance cannot free a
/// single dirty frame.
fn all_writes_fatal() -> FaultPlan {
    let mut plan = FaultPlan::new(7);
    for device in [DeviceKind::Dram, DeviceKind::Nvm, DeviceKind::Ssd] {
        plan = plan.rule(
            FaultRule::any(Trigger::Always, FaultKind::Fatal)
                .on_device(device)
                .on_op(FaultOp::Write),
        );
    }
    plan.rule(
        FaultRule::any(Trigger::Always, FaultKind::Fatal)
            .on_device(DeviceKind::Ssd)
            .on_op(FaultOp::Sync),
    )
}

/// Pool exhausted while the workers are stalled by injected fatal faults:
/// fetches must fall back to inline eviction (counted as backpressure),
/// not deadlock or fail.
#[test]
fn backpressure_fallback_when_workers_stalled() {
    // Huge interval: workers only run when kicked, so the fault window is
    // deterministic.
    let maint = MaintenanceConfig {
        interval_us: 60_000_000,
        ..MaintenanceConfig::default()
    };
    // Eager D_w routes writes through DRAM and N_w admits evicted dirty
    // pages to NVM: after the fill below, both pools are full of dirty
    // resident pages.
    let bm = manager(maint, MigrationPolicy::eager());

    let pids: Vec<PageId> = (0..16).map(|_| bm.allocate_page().unwrap()).collect();
    for (i, pid) in pids.iter().enumerate() {
        fill(&bm, *pid, i as u8);
    }

    // Stall the workers: every write-back they attempt now fails fatally.
    bm.admin()
        .set_fault_injector(Some(Arc::new(FaultInjector::new(all_writes_fatal()))));
    let maintenance = bm.maintenance();
    maintenance.start();
    // The start() kick runs at least one (fruitless) refill cycle.
    wait_for("a stalled maintenance cycle", || {
        bm.metrics().maint_cycles >= 1
    });
    let (dram_free, nvm_free) = bm.free_frames();
    assert_eq!(
        (dram_free, nvm_free),
        (0, 0),
        "stalled workers must not have freed dirty frames"
    );

    // Foreground resumes fault-free. Misses find the free lists empty and
    // must take the inline eviction path — successfully.
    bm.admin().set_fault_injector(None);
    for (i, pid) in pids.iter().enumerate() {
        let g = bm.fetch_read(*pid).unwrap();
        let mut b = [0u8; 8];
        g.read(0, &mut b).unwrap();
        assert!(b.iter().all(|&x| x == i as u8), "page {pid} corrupted");
    }
    let m = bm.metrics();
    assert!(
        m.backpressure_fallbacks >= 1,
        "inline fallback must be counted (got {})",
        m.backpressure_fallbacks
    );
    maintenance.stop();
    bm.assert_quiescent();
}

/// Threaded maintenance parks across a simulated crash; frames the workers
/// freed before the crash are invalidated with everything else, and the
/// post-recovery state is consistent.
#[test]
fn maintenance_parks_across_crash() {
    let maint = MaintenanceConfig {
        interval_us: 200,
        workers: 2,
        ..MaintenanceConfig::default()
    };
    let bm = manager(maint, MigrationPolicy::lazy());
    let maintenance = bm.maintenance();
    maintenance.start();

    let pids: Vec<PageId> = (0..24).map(|_| bm.allocate_page().unwrap()).collect();
    for (i, pid) in pids.iter().enumerate() {
        fill(&bm, *pid, i as u8);
    }
    wait_for("a maintenance cycle", || bm.metrics().maint_cycles >= 1);

    // Park every worker: returns only once none is mid-cycle, so no
    // maintenance I/O races the crash below.
    maintenance.pause_for_crash();
    assert!(maintenance.is_running(), "paused workers stay spawned");
    bm.simulate_crash();
    let recovered = bm.recover_nvm_buffer();
    bm.recover_page_allocator();

    // Tier bookkeeping must be consistent: the crash dropped every frame,
    // recovery re-adopted exactly the NVM-resident set. (Checked while the
    // workers are still parked — resuming them would immediately start
    // pre-evicting again.)
    let (dram_pages, nvm_pages) = bm.resident_pages();
    let (dram_frames, nvm_frames) = bm.occupied_frames();
    assert_eq!(dram_pages, dram_frames, "DRAM mapping/pool mismatch");
    assert_eq!(nvm_pages, nvm_frames, "NVM mapping/pool mismatch");
    assert_eq!(nvm_pages, recovered.len(), "NVM scan adopted every page");
    maintenance.resume();

    // The manager keeps working after resume (workers refill again).
    for pid in &pids {
        let _ = bm.fetch_read(*pid).unwrap();
    }
    maintenance.stop();
    bm.assert_quiescent();
}

/// 8 fetch threads race the maintenance workers; every thread must read
/// its own writes and the manager must be quiescent afterwards.
#[test]
fn fetch_storm_races_maintenance_workers() {
    let maint = MaintenanceConfig {
        interval_us: 50,
        workers: 2,
        ..MaintenanceConfig::default()
    };
    let bm = manager(maint, MigrationPolicy::lazy());
    let maintenance = bm.maintenance();
    maintenance.start();

    const THREADS: usize = 8;
    const PAGES_PER_THREAD: usize = 4;
    const ROUNDS: usize = 40;
    let pids: Vec<PageId> = (0..THREADS * PAGES_PER_THREAD)
        .map(|_| bm.allocate_page().unwrap())
        .collect();
    let pids = Arc::new(pids);

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let bm = Arc::clone(&bm);
        let pids = Arc::clone(&pids);
        handles.push(std::thread::spawn(move || {
            let mine = &pids[t * PAGES_PER_THREAD..(t + 1) * PAGES_PER_THREAD];
            for round in 0..ROUNDS {
                let byte = (t * ROUNDS + round) as u8;
                for pid in mine {
                    let g = bm.fetch_write(*pid).unwrap();
                    g.write(0, &[byte; 64]).unwrap();
                    drop(g);
                    let g = bm.fetch_read(*pid).unwrap();
                    let mut b = [0u8; 64];
                    g.read(0, &mut b).unwrap();
                    assert!(b.iter().all(|&x| x == byte), "lost own write on {pid}");
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let m = bm.metrics();
    assert!(m.maint_cycles >= 1, "workers must have run");
    maintenance.stop();
    bm.assert_quiescent();
}

/// In steady state at default watermarks the workers keep up: a paced
/// single-threaded scan over a DRAM-overflowing working set never needs
/// the inline fallback.
#[test]
fn steady_state_has_no_backpressure() {
    let bm = manager(MaintenanceConfig::default(), MigrationPolicy::lazy());
    let pids: Vec<PageId> = (0..32).map(|_| bm.allocate_page().unwrap()).collect();
    for (i, pid) in pids.iter().enumerate() {
        fill(&bm, *pid, i as u8);
    }
    let maintenance = bm.maintenance();
    maintenance.start();
    // Let the initial refill reach the high watermarks.
    wait_for("initial refill", || {
        let (d, n) = bm.free_frames();
        d >= 1 && n >= 1
    });
    for _ in 0..4 {
        for pid in &pids {
            // A paced workload: in real deployments each miss costs device
            // I/O, giving workers time to refill. Emulate that pacing by
            // letting the refill land before the next miss.
            wait_for("worker refill between misses", || {
                let (d, n) = bm.free_frames();
                d >= 1 && n >= 1
            });
            let _ = bm.fetch_read(*pid).unwrap();
        }
    }
    assert_eq!(
        bm.metrics().backpressure_fallbacks,
        0,
        "a paced workload at default watermarks must never fall back inline"
    );
    maintenance.stop();
    bm.assert_quiescent();
}
