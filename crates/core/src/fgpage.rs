//! Cache-line-grained pages and mini pages (paper §2.1, Figure 2).
//!
//! When fine-grained loading is enabled, a page promoted from NVM to DRAM
//! is not copied wholesale. Instead the DRAM copy starts empty and loads
//! *granules* (64–512 B units, Figure 11) on demand from the backing
//! NVM-resident page, tracked by `resident` and `dirty` masks. Two layouts
//! exist:
//!
//! * [`FinePage`] — a full-size DRAM frame with per-granule masks
//!   (Figure 2a); granule `i` of the page lives at offset `i * granule`.
//! * [`MiniPage`] — room for only sixteen granules carved out of a shared
//!   slab frame, with a slot array mapping logical granule ids to slots
//!   (Figure 2b). On overflow (a seventeenth distinct granule) the mini
//!   page is transparently promoted to a [`FinePage`].
//!
//! The masks and slot arrays live beside the descriptor (their on-device
//! headers are accounted for in the slab stride), so this module is pure
//! bookkeeping; the buffer manager performs all device I/O.

use std::collections::HashMap;

use spitfire_sync::lock::Mutex;

use crate::types::{FrameId, PageId};

/// Maximum number of granules per page (16 KB page / 64 B granule).
pub(crate) const MAX_GRANULES: usize = 256;

/// Number of slots in a mini page (Figure 2b).
pub(crate) const MINI_SLOTS: usize = 16;

/// Sentinel for an empty mini-page slot.
const EMPTY_SLOT: u16 = u16::MAX;

/// A bitmask over up to 256 granules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct GranuleMask {
    words: [u64; MAX_GRANULES / 64],
}

impl GranuleMask {
    /// All-clear mask.
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Set granule `i`; returns the previous value.
    pub(crate) fn set(&mut self, i: usize) -> bool {
        let (w, m) = (i / 64, 1u64 << (i % 64));
        let was = self.words[w] & m != 0;
        self.words[w] |= m;
        was
    }

    /// Whether granule `i` is set.
    pub(crate) fn get(&self, i: usize) -> bool {
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set granules.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterate over set granule indices.
    pub(crate) fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, w)| {
            let mut w = *w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(bit)
            })
            .map(move |bit| wi * 64 + bit)
        })
    }
}

/// Cache-line-grained page state (Figure 2a).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct FinePage {
    /// The full-size DRAM frame holding loaded granules at their natural
    /// offsets.
    pub frame: FrameId,
    /// Granules present in DRAM.
    pub resident: GranuleMask,
    /// Granules modified since promotion (must be written back to NVM on
    /// eviction).
    pub dirty: GranuleMask,
}

impl FinePage {
    /// An empty fine page over `frame`.
    pub(crate) fn new(frame: FrameId) -> Self {
        FinePage {
            frame,
            resident: GranuleMask::new(),
            dirty: GranuleMask::new(),
        }
    }
}

/// Location of a mini page inside a slab frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct MiniSlot {
    /// The shared slab frame.
    pub slab: FrameId,
    /// Index of this mini page within the slab.
    pub index: u8,
}

/// Mini page state (Figure 2b).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct MiniPage {
    /// Where this mini page's sixteen granule slots live.
    pub slot: MiniSlot,
    /// `slots[j]` = logical granule id stored in slot `j`
    /// (`u16::MAX` = empty).
    pub slots: [u16; MINI_SLOTS],
    /// Occupied slot count (the paper's `count` field).
    pub count: u8,
    /// Per-slot dirty bits (the paper's `dirty` mask).
    pub dirty: u16,
    /// Per-slot "content present" bits: a slot exists as soon as a granule
    /// is assigned, but its bytes arrive with the on-demand load (or the
    /// first fully-covering write).
    pub loaded: u16,
}

impl MiniPage {
    /// An empty mini page at `slot`.
    pub(crate) fn new(slot: MiniSlot) -> Self {
        MiniPage {
            slot,
            slots: [EMPTY_SLOT; MINI_SLOTS],
            count: 0,
            dirty: 0,
            loaded: 0,
        }
    }

    /// Slot index holding logical granule `gid`, if loaded.
    ///
    /// Linear scan of the slot array — this is the indirection overhead the
    /// paper attributes the mini page's limited gains to (§6.5).
    pub(crate) fn find(&self, gid: u16) -> Option<usize> {
        self.slots[..self.count as usize]
            .iter()
            .position(|&s| s == gid)
    }

    /// Claim a slot for granule `gid`; `None` when the mini page is full
    /// (caller promotes to a [`FinePage`]).
    pub(crate) fn insert(&mut self, gid: u16) -> Option<usize> {
        if let Some(j) = self.find(gid) {
            return Some(j);
        }
        if (self.count as usize) < MINI_SLOTS {
            let j = self.count as usize;
            self.slots[j] = gid;
            self.count += 1;
            Some(j)
        } else {
            None
        }
    }

    /// Mark slot `j` dirty.
    pub(crate) fn mark_dirty(&mut self, j: usize) {
        self.dirty |= 1 << j;
    }

    /// Whether slot `j` is dirty.
    pub(crate) fn is_dirty(&self, j: usize) -> bool {
        self.dirty & (1 << j) != 0
    }

    /// Mark slot `j`'s content as present.
    pub(crate) fn mark_loaded(&mut self, j: usize) {
        self.loaded |= 1 << j;
    }

    /// Whether slot `j`'s content is present.
    pub(crate) fn loaded(&self, j: usize) -> bool {
        self.loaded & (1 << j) != 0
    }

    /// Iterate `(slot, granule id)` over occupied slots.
    pub(crate) fn occupied(&self) -> impl Iterator<Item = (usize, u16)> + '_ {
        self.slots[..self.count as usize]
            .iter()
            .copied()
            .enumerate()
    }
}

/// Per-slab bookkeeping.
#[derive(Debug)]
struct SlabInfo {
    free_slots: Vec<u8>,
    /// `members[i]` = page occupying mini slot `i`.
    members: Vec<Option<PageId>>,
}

/// Allocator carving mini pages out of full DRAM frames ("slabs").
///
/// This is how the mini-page layout actually reduces DRAM footprint
/// (Figure 2b): several mini pages share one 16 KB frame, so the DRAM
/// buffer caches proportionally more pages. The buffer manager allocates
/// and frees the slab frames; this structure tracks slots and slab
/// membership (needed when CLOCK picks a slab frame for eviction).
#[derive(Debug)]
pub(crate) struct MiniSlabs {
    /// Byte stride of one mini page within a slab: sixteen granules plus a
    /// one-cache-line header (Figure 2b: "the header of a mini page fits
    /// within a cache line").
    stride: usize,
    minis_per_slab: usize,
    slabs: Mutex<HashMap<u32, SlabInfo>>,
}

impl MiniSlabs {
    /// An allocator for `page_size`-byte slabs and `granule`-byte granules.
    pub(crate) fn new(page_size: usize, granule: usize) -> Self {
        let stride = MINI_SLOTS * granule + 64;
        MiniSlabs {
            stride,
            minis_per_slab: (page_size / stride).max(1),
            slabs: Mutex::new(HashMap::new()),
        }
    }

    /// Minis hosted per slab frame.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn minis_per_slab(&self) -> usize {
        self.minis_per_slab
    }

    /// Byte offset of slot `j`'s granule `k` within the slab frame.
    pub(crate) fn content_offset(&self, slot: MiniSlot, j: usize, granule: usize) -> usize {
        slot.index as usize * self.stride + 64 + j * granule
    }

    /// Take a free mini slot from an existing slab, if any, registering
    /// `pid` as its occupant.
    pub(crate) fn try_alloc(&self, pid: PageId) -> Option<MiniSlot> {
        let mut slabs = self.slabs.lock();
        for (frame, info) in slabs.iter_mut() {
            if let Some(index) = info.free_slots.pop() {
                info.members[index as usize] = Some(pid);
                return Some(MiniSlot {
                    slab: FrameId(*frame),
                    index,
                });
            }
        }
        None
    }

    /// Register a freshly allocated slab frame and claim its first slot for
    /// `pid`.
    pub(crate) fn register_slab(&self, frame: FrameId, pid: PageId) -> MiniSlot {
        let mut slabs = self.slabs.lock();
        let mut info = SlabInfo {
            free_slots: (1..self.minis_per_slab as u8).rev().collect(),
            members: vec![None; self.minis_per_slab],
        };
        info.members[0] = Some(pid);
        slabs.insert(frame.0, info);
        MiniSlot {
            slab: frame,
            index: 0,
        }
    }

    /// Release `slot`. Returns `true` if the slab frame is now empty and
    /// should be freed by the caller.
    pub(crate) fn free_slot(&self, slot: MiniSlot) -> bool {
        let mut slabs = self.slabs.lock();
        let Some(info) = slabs.get_mut(&slot.slab.0) else {
            return false;
        };
        info.members[slot.index as usize] = None;
        info.free_slots.push(slot.index);
        if info.free_slots.len() == self.minis_per_slab {
            slabs.remove(&slot.slab.0);
            true
        } else {
            false
        }
    }

    /// Whether `frame` is a registered slab.
    pub(crate) fn is_slab(&self, frame: FrameId) -> bool {
        self.slabs.lock().contains_key(&frame.0)
    }

    /// Pages currently hosted by slab `frame`.
    pub(crate) fn members_of(&self, frame: FrameId) -> Vec<PageId> {
        self.slabs
            .lock()
            .get(&frame.0)
            .map(|info| info.members.iter().flatten().copied().collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_set_get_iter() {
        let mut m = GranuleMask::new();
        assert!(!m.set(0));
        assert!(!m.set(255));
        assert!(!m.set(64));
        assert!(m.set(64));
        assert!(m.get(0) && m.get(64) && m.get(255));
        assert!(!m.get(1));
        assert_eq!(m.count(), 3);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 64, 255]);
    }

    #[test]
    fn mini_page_insert_find_overflow() {
        let mut mp = MiniPage::new(MiniSlot {
            slab: FrameId(0),
            index: 0,
        });
        // The paper's example: granule 255 loaded into the second slot.
        assert_eq!(mp.insert(8), Some(0));
        assert_eq!(mp.insert(255), Some(1));
        assert_eq!(mp.insert(2), Some(2));
        assert_eq!(mp.find(255), Some(1));
        assert_eq!(mp.find(9), None);
        // Re-inserting an existing granule reuses its slot.
        assert_eq!(mp.insert(8), Some(0));
        assert_eq!(mp.count, 3);
        // Fill to sixteen, then overflow.
        for gid in 100..113 {
            assert!(mp.insert(gid).is_some());
        }
        assert_eq!(mp.count as usize, MINI_SLOTS);
        assert_eq!(
            mp.insert(999),
            None,
            "seventeenth distinct granule overflows"
        );
    }

    #[test]
    fn mini_page_dirty_bits() {
        let mut mp = MiniPage::new(MiniSlot {
            slab: FrameId(0),
            index: 0,
        });
        let j = mp.insert(42).unwrap();
        assert!(!mp.is_dirty(j));
        mp.mark_dirty(j);
        assert!(mp.is_dirty(j));
        assert_eq!(mp.occupied().collect::<Vec<_>>(), vec![(0, 42)]);
    }

    #[test]
    fn slabs_allocate_and_reclaim() {
        // 4096-byte slabs, 64 B granules: stride = 16*64 + 64 = 1088,
        // 3 minis per slab.
        let slabs = MiniSlabs::new(4096, 64);
        assert_eq!(slabs.minis_per_slab(), 3);
        assert!(
            slabs.try_alloc(PageId(1)).is_none(),
            "no slabs registered yet"
        );

        let s0 = slabs.register_slab(FrameId(7), PageId(1));
        assert_eq!(
            s0,
            MiniSlot {
                slab: FrameId(7),
                index: 0
            }
        );
        assert!(slabs.is_slab(FrameId(7)));

        let s1 = slabs.try_alloc(PageId(2)).unwrap();
        let s2 = slabs.try_alloc(PageId(3)).unwrap();
        assert_eq!(s1.slab, FrameId(7));
        assert_eq!(s2.slab, FrameId(7));
        assert!(slabs.try_alloc(PageId(4)).is_none(), "slab full");

        let mut members = slabs.members_of(FrameId(7));
        members.sort();
        assert_eq!(members, vec![PageId(1), PageId(2), PageId(3)]);

        assert!(!slabs.free_slot(s0));
        assert!(!slabs.free_slot(s1));
        assert!(slabs.free_slot(s2), "last slot frees the slab");
        assert!(!slabs.is_slab(FrameId(7)));
        assert!(slabs.members_of(FrameId(7)).is_empty());
    }

    #[test]
    fn content_offsets_do_not_overlap() {
        let slabs = MiniSlabs::new(16384, 256);
        // stride = 16*256 + 64 = 4160; 3 minis per 16 KB slab.
        assert_eq!(slabs.minis_per_slab(), 3);
        let a = MiniSlot {
            slab: FrameId(0),
            index: 0,
        };
        let b = MiniSlot {
            slab: FrameId(0),
            index: 1,
        };
        let a_end = slabs.content_offset(a, MINI_SLOTS - 1, 256) + 256;
        let b_start = slabs.content_offset(b, 0, 256);
        assert!(
            a_end <= b_start,
            "mini {a_end} overlaps next mini at {b_start}"
        );
        // The last mini's last granule must fit in the slab frame.
        let c = MiniSlot {
            slab: FrameId(0),
            index: 2,
        };
        let c_end = slabs.content_offset(c, MINI_SLOTS - 1, 256) + 256;
        assert!(c_end <= 16384);
    }
}
