//! Storage-system design advisor (paper §5.3, §6.6, §6.7).
//!
//! The paper closes with a set of design guidelines for provisioning a
//! multi-tier hierarchy under a cost budget:
//!
//! * highest absolute performance needs DRAM (lowest latency);
//! * read-intensive workloads: DRAM-NVM-SSD wins on performance/price
//!   (hot data in DRAM, warm in NVM);
//! * write-intensive workloads: NVM-SSD wins on performance/price (dirty
//!   pages are persistent in NVM, so recovery-protocol flushing
//!   disappears);
//! * the migration policy must be lazier the smaller DRAM is relative to
//!   NVM (Figure 9).
//!
//! This module encodes those guidelines ([`recommend`]) and provides the
//! grid-search scaffolding the paper uses to find the best
//! performance-per-dollar hierarchy empirically ([`GridSearch`]).

use serde::{Deserialize, Serialize};

use crate::config::Hierarchy;
use crate::policy::MigrationPolicy;

/// A coarse characterization of the target workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Fraction of operations that modify data (YCSB-RO 0.0, BA 0.5,
    /// WH 0.9, TPC-C 0.88).
    pub write_fraction: f64,
    /// Estimated working-set size in bytes.
    pub working_set: u64,
    /// Whether the workload needs synchronous durability (log/checkpoint
    /// pages on the critical path, §3.2).
    pub durable_writes: bool,
}

/// The advisor's output: a hierarchy shape and a matching starting policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Recommendation {
    /// The hierarchy with the best expected performance/price.
    pub hierarchy: Hierarchy,
    /// A starting migration policy (hand the tuner this as its initial
    /// point).
    pub policy: MigrationPolicy,
    /// Why (one of the paper's guideline clauses).
    pub rationale: &'static str,
}

/// Device prices per byte (Table 1, $/GB scaled to bytes).
const DRAM_PER_BYTE: f64 = 10.0 / 1e9;
const NVM_PER_BYTE: f64 = 4.5 / 1e9;

/// Apply the paper's §6.6/§6.7 guidelines to a workload and budget
/// (dollars available for buffer devices, excluding the SSD).
pub fn recommend(profile: &WorkloadProfile, buffer_budget_dollars: f64) -> Recommendation {
    let all_dram_cost = profile.working_set as f64 * DRAM_PER_BYTE;
    // Cacheable in DRAM within budget: the classic design still wins while
    // everything fits (Figure 15's small-database regime) — unless
    // durability pressure favours NVM.
    if all_dram_cost <= buffer_budget_dollars && profile.write_fraction < 0.5 {
        return Recommendation {
            hierarchy: Hierarchy::DramSsd,
            policy: MigrationPolicy::eager(),
            rationale: "working set fits in DRAM within budget; DRAM has the lowest latency",
        };
    }
    if profile.write_fraction >= 0.5 && profile.durable_writes {
        return Recommendation {
            hierarchy: Hierarchy::NvmSsd,
            policy: MigrationPolicy::lazy(),
            rationale: "write-intensive with durability: NVM absorbs persistent writes and \
                        eliminates recovery-protocol flushing (Figure 14d)",
        };
    }
    Recommendation {
        hierarchy: Hierarchy::DramNvmSsd,
        policy: MigrationPolicy::lazy(),
        rationale: "read-intensive beyond DRAM budget: small DRAM for the hottest data over \
                    a large NVM buffer (Figures 14b/14c)",
    }
}

/// One measured grid-search point (Figure 14).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridPoint {
    /// DRAM capacity in bytes.
    pub dram: u64,
    /// NVM capacity in bytes.
    pub nvm: u64,
    /// Fixed SSD cost in dollars (same for every candidate).
    pub ssd_cost: f64,
    /// Measured throughput (operations per second).
    pub throughput: f64,
}

impl GridPoint {
    /// Total hierarchy cost in dollars.
    pub fn cost(&self) -> f64 {
        self.dram as f64 * DRAM_PER_BYTE + self.nvm as f64 * NVM_PER_BYTE + self.ssd_cost
    }

    /// Operations per second per dollar (the paper's selection metric).
    pub fn perf_per_dollar(&self) -> f64 {
        self.throughput / self.cost()
    }
}

/// Collects measured grid points and answers Figure 14-style queries.
#[derive(Debug, Default, Clone)]
pub struct GridSearch {
    points: Vec<GridPoint>,
}

impl GridSearch {
    /// An empty search.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a measured candidate.
    pub fn add(&mut self, point: GridPoint) {
        self.points.push(point);
    }

    /// All recorded points.
    pub fn points(&self) -> &[GridPoint] {
        &self.points
    }

    /// The candidate with the highest performance/price.
    pub fn best_perf_per_dollar(&self) -> Option<GridPoint> {
        self.points.iter().copied().max_by(|a, b| {
            a.perf_per_dollar()
                .partial_cmp(&b.perf_per_dollar())
                .expect("throughputs are finite")
        })
    }

    /// The candidate with the highest absolute throughput.
    pub fn best_throughput(&self) -> Option<GridPoint> {
        self.points
            .iter()
            .copied()
            .max_by(|a, b| a.throughput.partial_cmp(&b.throughput).expect("finite"))
    }

    /// The cheapest candidate achieving at least `fraction` of the best
    /// absolute throughput (the "knee" question: how much hierarchy do I
    /// actually need?).
    pub fn cheapest_within(&self, fraction: f64) -> Option<GridPoint> {
        let best = self.best_throughput()?.throughput;
        self.points
            .iter()
            .copied()
            .filter(|p| p.throughput >= best * fraction)
            .min_by(|a, b| a.cost().partial_cmp(&b.cost()).expect("finite"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1_000_000_000;

    #[test]
    fn cacheable_read_workload_gets_dram_ssd() {
        let rec = recommend(
            &WorkloadProfile {
                write_fraction: 0.0,
                working_set: 4 * GB,
                durable_writes: false,
            },
            100.0, // $100 buys 10 GB DRAM
        );
        assert_eq!(rec.hierarchy, Hierarchy::DramSsd);
        assert_eq!(rec.policy, MigrationPolicy::eager());
    }

    #[test]
    fn write_heavy_durable_gets_nvm_ssd() {
        let rec = recommend(
            &WorkloadProfile {
                write_fraction: 0.9,
                working_set: 100 * GB,
                durable_writes: true,
            },
            500.0,
        );
        assert_eq!(rec.hierarchy, Hierarchy::NvmSsd);
        assert_eq!(rec.policy, MigrationPolicy::lazy());
    }

    #[test]
    fn large_read_workload_gets_three_tiers() {
        let rec = recommend(
            &WorkloadProfile {
                write_fraction: 0.1,
                working_set: 100 * GB,
                durable_writes: true,
            },
            500.0, // can't afford 100 GB of DRAM ($1000)
        );
        assert_eq!(rec.hierarchy, Hierarchy::DramNvmSsd);
        assert_eq!(rec.policy, MigrationPolicy::lazy());
    }

    #[test]
    fn grid_point_costs_match_paper_scale() {
        // Figure 14a's corner: 0 DRAM + 0 NVM over a 200 GB SSD = $560.
        let p = GridPoint {
            dram: 0,
            nvm: 0,
            ssd_cost: 560.0,
            throughput: 1000.0,
        };
        assert!((p.cost() - 560.0).abs() < 1e-9);
        // 4 GB DRAM + 40 GB NVM = 40 + 180 + 560 = 780 (Figure 14a).
        let p = GridPoint {
            dram: 4 * GB,
            nvm: 40 * GB,
            ssd_cost: 560.0,
            throughput: 1000.0,
        };
        assert!((p.cost() - 780.0).abs() < 1e-6, "cost {}", p.cost());
    }

    #[test]
    fn grid_search_selects_expected_points() {
        let mut g = GridSearch::new();
        g.add(GridPoint {
            dram: 0,
            nvm: 80 * GB,
            ssd_cost: 560.0,
            throughput: 8000.0,
        });
        g.add(GridPoint {
            dram: 4 * GB,
            nvm: 80 * GB,
            ssd_cost: 560.0,
            throughput: 12000.0,
        });
        g.add(GridPoint {
            dram: 32 * GB,
            nvm: 160 * GB,
            ssd_cost: 560.0,
            throughput: 13000.0,
        });
        let best_ppd = g.best_perf_per_dollar().unwrap();
        assert_eq!(
            best_ppd.dram,
            4 * GB,
            "small DRAM + big NVM wins perf/price"
        );
        let best_abs = g.best_throughput().unwrap();
        assert_eq!(
            best_abs.dram,
            32 * GB,
            "big hierarchy wins absolute throughput"
        );
        // 12000 >= 0.9 * 13000 -> the mid configuration is the knee.
        let knee = g.cheapest_within(0.9).unwrap();
        assert_eq!(knee.dram, 4 * GB);
        assert!(g.points().len() == 3);
        assert!(GridSearch::new().best_throughput().is_none());
    }
}
