//! Pinned-page guards.
//!
//! A [`PageGuard`] represents one pinned copy of a page. While a guard is
//! alive its copy cannot be evicted or migrated. Reads and writes through
//! the guard are charged to the device the copy resides on — this is how
//! directly operating on NVM-resident data (paper §3.1) pays NVM latency
//! instead of DRAM latency.

use spitfire_device::AccessPattern;

use crate::manager::BufferManager;
use crate::types::{FrameId, PageId, Tier};
use crate::Result;

/// Which copy the guard pinned and how to reach its bytes.
#[derive(Debug, Clone, Copy)]
pub(crate) enum GuardKind {
    /// Full-page copy in the tier-1 (DRAM / memory-mode) pool.
    FullDram(FrameId),
    /// Full-page copy in the NVM pool.
    FullNvm(FrameId),
    /// Fine-grained or mini copy in DRAM; all access goes through the
    /// descriptor lock (see `fgpage`).
    FineGrained,
}

/// A pinned reference to one resident copy of a page.
///
/// Dropping the guard unpins the copy. A thread must not hold two guards on
/// the same page at once (migrations assume each pin belongs to a distinct
/// operation).
pub struct PageGuard<'a> {
    pub(crate) bm: &'a BufferManager,
    pub(crate) pid: PageId,
    pub(crate) kind: GuardKind,
    /// True if the pinned copy lives in the DRAM slot of the descriptor
    /// (fine-grained copies always do).
    pub(crate) in_dram_slot: bool,
    /// True if the pin is held in the descriptor's optimistic pin word
    /// (lock-free fast path) rather than the mutex-guarded `pins` field.
    /// The drop must release through the same mechanism.
    pub(crate) optimistic: bool,
}

impl<'a> PageGuard<'a> {
    /// The page this guard pins.
    pub fn page_id(&self) -> PageId {
        self.pid
    }

    /// The tier serving this guard's accesses.
    pub fn tier(&self) -> Tier {
        match self.kind {
            GuardKind::FullDram(_) | GuardKind::FineGrained => Tier::Dram,
            GuardKind::FullNvm(_) => Tier::Nvm,
        }
    }

    /// Read `buf.len()` bytes of page content starting at `offset`.
    pub fn read(&self, offset: usize, buf: &mut [u8]) -> Result<()> {
        match self.kind {
            GuardKind::FullDram(f) => {
                self.bm
                    .tier1_pool()
                    .read(f, offset, buf, AccessPattern::Random)
            }
            GuardKind::FullNvm(f) => self
                .bm
                .nvm_pool()
                .read(f, offset, buf, AccessPattern::Random),
            GuardKind::FineGrained => self.bm.fg_read(self.pid, offset, buf),
        }
    }

    /// Write `data` into the page at `offset`, marking the copy dirty.
    ///
    /// Writes to an NVM-resident copy are persisted (`clwb` + `sfence`)
    /// before returning, matching the paper's durability protocol for the
    /// NVM buffer (§5.2: NVM-resident pages are never flushed to SSD on
    /// checkpoint because they are already persistent).
    pub fn write(&self, offset: usize, data: &[u8]) -> Result<()> {
        match self.kind {
            GuardKind::FullDram(f) => {
                self.bm
                    .tier1_pool()
                    .write(f, offset, data, AccessPattern::Random)?;
            }
            GuardKind::FullNvm(f) => {
                let pool = self.bm.nvm_pool();
                pool.write(f, offset, data, AccessPattern::Random)?;
                pool.persist(f, offset, data.len())?;
            }
            GuardKind::FineGrained => self.bm.fg_write(self.pid, offset, data)?,
        }
        if !matches!(self.kind, GuardKind::FineGrained) {
            self.bm.mark_dirty(self.pid, self.in_dram_slot);
        }
        Ok(())
    }

    /// Read a little-endian `u64` at `offset` (convenience for headers).
    pub fn read_u64(&self, offset: usize) -> Result<u64> {
        let mut b = [0u8; 8];
        self.read(offset, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Write a little-endian `u64` at `offset`.
    pub fn write_u64(&self, offset: usize, value: u64) -> Result<()> {
        self.write(offset, &value.to_le_bytes())
    }

    /// Page size in bytes (content addressable through this guard).
    pub fn page_size(&self) -> usize {
        self.bm.page_size()
    }
}

impl Drop for PageGuard<'_> {
    fn drop(&mut self) {
        if self.optimistic {
            self.bm.unpin_fast(self.pid, self.in_dram_slot);
        } else {
            self.bm.unpin(self.pid, self.in_dram_slot);
        }
    }
}

impl std::fmt::Debug for PageGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageGuard")
            .field("pid", &self.pid)
            .field("tier", &self.tier())
            .finish_non_exhaustive()
    }
}

/// A read-only pinned page, returned by
/// [`BufferManager::fetch_read`](crate::BufferManager::fetch_read).
///
/// Wraps a [`PageGuard`] but exposes no write methods, so writing through
/// a read-intent fetch is a compile error rather than a silently
/// mis-charged policy decision (the D_r/D_w coins differ by intent).
#[derive(Debug)]
pub struct ReadGuard<'a> {
    inner: PageGuard<'a>,
}

impl<'a> ReadGuard<'a> {
    pub(crate) fn new(inner: PageGuard<'a>) -> Self {
        ReadGuard { inner }
    }

    /// The page this guard pins.
    pub fn page_id(&self) -> PageId {
        self.inner.page_id()
    }

    /// The tier serving this guard's accesses.
    pub fn tier(&self) -> Tier {
        self.inner.tier()
    }

    /// Page size in bytes (content addressable through this guard).
    pub fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    /// Read `buf.len()` bytes of page content starting at `offset`.
    pub fn read(&self, offset: usize, buf: &mut [u8]) -> Result<()> {
        self.inner.read(offset, buf)
    }

    /// Read a little-endian `u64` at `offset` (convenience for headers).
    pub fn read_u64(&self, offset: usize) -> Result<u64> {
        self.inner.read_u64(offset)
    }
}

/// A writable pinned page, returned by
/// [`BufferManager::fetch_write`](crate::BufferManager::fetch_write):
/// everything a [`ReadGuard`] offers, plus [`write`](Self::write) /
/// [`write_u64`](Self::write_u64).
#[derive(Debug)]
pub struct WriteGuard<'a> {
    inner: PageGuard<'a>,
}

impl<'a> WriteGuard<'a> {
    pub(crate) fn new(inner: PageGuard<'a>) -> Self {
        WriteGuard { inner }
    }

    /// The page this guard pins.
    pub fn page_id(&self) -> PageId {
        self.inner.page_id()
    }

    /// The tier serving this guard's accesses.
    pub fn tier(&self) -> Tier {
        self.inner.tier()
    }

    /// Page size in bytes (content addressable through this guard).
    pub fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    /// Read `buf.len()` bytes of page content starting at `offset`.
    pub fn read(&self, offset: usize, buf: &mut [u8]) -> Result<()> {
        self.inner.read(offset, buf)
    }

    /// Read a little-endian `u64` at `offset` (convenience for headers).
    pub fn read_u64(&self, offset: usize) -> Result<u64> {
        self.inner.read_u64(offset)
    }

    /// Write `data` into the page at `offset`, marking the copy dirty.
    /// See [`PageGuard::write`] for the NVM durability semantics.
    pub fn write(&self, offset: usize, data: &[u8]) -> Result<()> {
        self.inner.write(offset, data)
    }

    /// Write a little-endian `u64` at `offset`.
    pub fn write_u64(&self, offset: usize, value: u64) -> Result<()> {
        self.inner.write_u64(offset, value)
    }
}
