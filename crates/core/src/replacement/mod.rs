//! Pluggable per-tier replacement policies.
//!
//! Each [`crate::manager::BufferManager`] pool owns one
//! [`ReplacementPolicy`] chosen at build time through
//! [`PolicyConfig`] (`.dram_policy(..)` / `.nvm_policy(..)` on the config
//! builder). The policy decides *which occupied frame to evict next*;
//! everything else (pin checks, dirty write-back, shadow commits) stays in
//! the manager.
//!
//! # Contract
//!
//! * [`ReplacementPolicy::touch`] runs on the lock-free fetch fast path —
//!   implementations MUST NOT take locks or block. The idiomatic shape is
//!   a test-first bit set in a padded [`AtomicBitmap`]: a plain load keeps
//!   the cache line Shared for hot frames, where an unconditional RMW
//!   would bounce it between cores on every hit.
//! * [`ReplacementPolicy::admit`] / [`ReplacementPolicy::evict`] bracket a
//!   frame's residency: `admit` fires when the allocator claims the frame
//!   (including recovery adoption), `evict` when it returns to the free
//!   pool. Both may take internal locks (they run on alloc/evict paths).
//! * [`ReplacementPolicy::victim`] may be called concurrently from fetch
//!   misses and maintenance workers. It returns a *candidate*: the caller
//!   re-validates (owner, pins, shadow ops) and simply asks again if the
//!   eviction fails, so a policy must keep advancing past rejected
//!   candidates rather than returning the same frame forever.
//! * Mini-page slab frames are allocated but never receive an owner, so a
//!   policy must track frames from `admit` (allocation), not from the
//!   first `touch` — otherwise slabs become unevictable.
//!
//! The shipped implementations are [`clock::ClockPolicy`] (the original
//! hard-wired sweep, bit-for-bit), [`sieve::SievePolicy`] (SIEVE: lazy
//! promotion via a visited bit and a non-moving insertion order), and
//! [`two_q::TwoQPolicy`] (a scan-resistant LRU-2Q: probationary FIFO in
//! front of a protected main queue).

pub mod clock;
pub mod sieve;
pub mod two_q;

use spitfire_sync::AtomicBitmap;

use crate::types::FrameId;

pub use clock::ClockPolicy;
pub use sieve::SievePolicy;
pub use two_q::TwoQPolicy;

/// Per-tier replacement policy: tracks frame "heat" and picks eviction
/// victims. Object-safe; one boxed instance per pool. See the module docs
/// for the full contract (lock-free `touch`, re-validated `victim`s).
pub trait ReplacementPolicy: Send + Sync + std::fmt::Debug {
    /// Human-readable policy name (stable; used in benchmark reports).
    fn name(&self) -> &'static str;

    /// Mark `frame` recently used. Called on every buffer hit from the
    /// lock-free fast path: MUST be wait-free (no locks, no unbounded
    /// loops) and should avoid dirtying shared cache lines for already-hot
    /// frames.
    fn touch(&self, frame: FrameId);

    /// `frame` was claimed from the free pool (allocation or recovery
    /// adoption). Idempotent: recovery may adopt an already-admitted
    /// frame.
    fn admit(&self, frame: FrameId);

    /// `frame` returned to the free pool.
    fn evict(&self, frame: FrameId);

    /// Next eviction candidate, or `None` if the policy cannot name one
    /// (empty pool, or every frame re-referenced faster than the scan).
    /// `occupied` is the pool's allocation bitmap — the source of truth
    /// for which frames exist; sweep-based policies scan it directly,
    /// queue-based ones track membership via `admit`/`evict` and may
    /// ignore it.
    fn victim(&self, occupied: &AtomicBitmap) -> Option<FrameId>;

    /// Batched victim selection for maintenance workers: push up to `max`
    /// candidates into `out`. Queue-based policies override this to take
    /// their internal lock once per batch instead of once per victim; the
    /// default just loops [`Self::victim`].
    fn victims(&self, occupied: &AtomicBitmap, max: usize, out: &mut Vec<FrameId>) {
        for _ in 0..max {
            match self.victim(occupied) {
                Some(f) => out.push(f),
                None => break,
            }
        }
    }

    /// Hint for where the allocator should start scanning for a free
    /// frame. CLOCK returns its hand so allocation reuses just-vacated
    /// frames; the default is "no preference".
    fn alloc_hint(&self) -> usize {
        0
    }
}

/// Which replacement policy a pool runs; set per tier on the config
/// builder ([`crate::BufferManagerConfigBuilder::dram_policy`] /
/// [`crate::BufferManagerConfigBuilder::nvm_policy`]).
#[non_exhaustive]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum PolicyConfig {
    /// CLOCK second-chance sweep over the occupancy bitmap (the default;
    /// this is the original hard-wired implementation behind the trait).
    #[default]
    Clock,
    /// SIEVE: insertion-ordered queue with a visited bit; the hand only
    /// moves over unvisited frames, so hot frames are never relinked.
    Sieve,
    /// Scan-resistant LRU-2Q: new frames enter a probationary FIFO and
    /// are promoted to the protected main queue only after a *second*
    /// touch, so a one-pass scan cannot flush the hot working set.
    TwoQ,
}

impl PolicyConfig {
    /// Every shipped policy (benchmark sweeps iterate this).
    pub const ALL: [PolicyConfig; 3] =
        [PolicyConfig::Clock, PolicyConfig::Sieve, PolicyConfig::TwoQ];

    /// Stable lowercase name (matches [`std::str::FromStr`] input).
    pub fn name(self) -> &'static str {
        match self {
            PolicyConfig::Clock => "clock",
            PolicyConfig::Sieve => "sieve",
            PolicyConfig::TwoQ => "2q",
        }
    }

    /// Build the policy instance for a pool of `n_frames` frames.
    pub fn build(self, n_frames: usize) -> Box<dyn ReplacementPolicy> {
        match self {
            PolicyConfig::Clock => Box::new(ClockPolicy::new(n_frames)),
            PolicyConfig::Sieve => Box::new(SievePolicy::new(n_frames)),
            PolicyConfig::TwoQ => Box::new(TwoQPolicy::new(n_frames)),
        }
    }
}

impl std::fmt::Display for PolicyConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for PolicyConfig {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "clock" => Ok(PolicyConfig::Clock),
            "sieve" => Ok(PolicyConfig::Sieve),
            "2q" | "two_q" | "twoq" | "lru-2q" => Ok(PolicyConfig::TwoQ),
            other => Err(format!("unknown replacement policy {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The trait must stay object-safe: pools hold `Box<dyn ..>`.
    fn _object_safe(p: &dyn ReplacementPolicy) -> &'static str {
        p.name()
    }

    #[test]
    fn config_builds_every_policy() {
        for cfg in PolicyConfig::ALL {
            let p = cfg.build(8);
            assert_eq!(p.name(), cfg.name());
            assert_eq!(_object_safe(p.as_ref()), cfg.name());
        }
    }

    #[test]
    fn parse_round_trips() {
        for cfg in PolicyConfig::ALL {
            assert_eq!(cfg.name().parse::<PolicyConfig>().unwrap(), cfg);
            assert_eq!(cfg.to_string(), cfg.name());
        }
        assert_eq!(
            "LRU-2Q".parse::<PolicyConfig>().unwrap(),
            PolicyConfig::TwoQ
        );
        assert!("lfu".parse::<PolicyConfig>().is_err());
    }

    #[test]
    fn default_is_clock() {
        assert_eq!(PolicyConfig::default(), PolicyConfig::Clock);
    }

    /// Shared conformance checks run against every implementation.
    fn conformance(cfg: PolicyConfig) {
        let n = 8;
        let p = cfg.build(n);
        let occupied = AtomicBitmap::new(n);
        // Empty pool: no victim.
        assert!(p.victim(&occupied).is_none(), "{cfg}: victim from empty");
        // Admit everything.
        for i in 0..n {
            occupied.set(i);
            p.admit(FrameId(i as u32));
        }
        // Some victim must appear within policy-internal sweeps.
        let v = p
            .victim(&occupied)
            .unwrap_or_else(|| panic!("{cfg}: no victim from full pool"));
        assert!((v.0 as usize) < n);
        // A frame that is touched repeatedly while every other frame is
        // evicted must be the survivor the policy protects longest: evict
        // n-1 victims, re-touching the favorite before each pick.
        let hot = FrameId(0);
        let mut evicted = Vec::new();
        for _ in 0..n - 1 {
            p.touch(hot);
            p.touch(hot);
            let mut v = None;
            // The policy may name the hot frame as a candidate once (e.g.
            // a cleared second chance); callers re-ask on rejection, so do
            // the same here a bounded number of times.
            for _ in 0..4 {
                let c = p
                    .victim(&occupied)
                    .unwrap_or_else(|| panic!("{cfg}: ran dry"));
                if c != hot && !evicted.contains(&c) {
                    v = Some(c);
                    break;
                }
            }
            let v = v.unwrap_or_else(|| panic!("{cfg}: kept naming the hot frame"));
            occupied.clear(v.0 as usize);
            p.evict(v);
            evicted.push(v);
        }
        assert_eq!(evicted.len(), n - 1);
        assert!(!evicted.contains(&hot), "{cfg}: evicted the hot frame");
        // Re-admitting freed frames works.
        for f in evicted {
            occupied.set(f.0 as usize);
            p.admit(f);
        }
        assert!(p.victim(&occupied).is_some());
    }

    #[test]
    fn clock_conformance() {
        conformance(PolicyConfig::Clock);
    }

    #[test]
    fn sieve_conformance() {
        conformance(PolicyConfig::Sieve);
    }

    #[test]
    fn two_q_conformance() {
        conformance(PolicyConfig::TwoQ);
    }

    #[test]
    fn batched_victims_respect_max() {
        for cfg in PolicyConfig::ALL {
            let p = cfg.build(8);
            let occupied = AtomicBitmap::new(8);
            for i in 0..8u32 {
                occupied.set(i as usize);
                p.admit(FrameId(i));
            }
            let mut out = Vec::new();
            p.victims(&occupied, 3, &mut out);
            assert!(out.len() <= 3, "{cfg}: over-filled batch");
            assert!(!out.is_empty(), "{cfg}: empty batch from full pool");
        }
    }
}
