//! CLOCK second-chance replacement (the original hard-wired policy,
//! extracted behind [`ReplacementPolicy`] bit-for-bit).

use spitfire_sync::atomic::{AtomicUsize, Ordering};
use spitfire_sync::AtomicBitmap;

use super::ReplacementPolicy;
use crate::types::FrameId;

/// CLOCK: one reference bit per frame plus a rotating hand.
///
/// `touch` sets the frame's reference bit (test-first, so hot frames cost
/// a plain load); `victim` sweeps the occupancy bitmap from the hand,
/// clearing reference bits as second chances and returning the first
/// occupied frame found without one. Wholly lock-free.
pub struct ClockPolicy {
    /// Padded: every buffer hit sets a reference bit, so this bitmap is
    /// hit-path-hot; a dense layout would pack 64 frames' bits per cache
    /// line and bounce it between cores on hits to neighboring frames.
    ref_bits: AtomicBitmap,
    hand: AtomicUsize,
    n_frames: usize,
}

impl ClockPolicy {
    /// A CLOCK instance for a pool of `n_frames` frames.
    pub fn new(n_frames: usize) -> Self {
        ClockPolicy {
            ref_bits: AtomicBitmap::new_padded(n_frames),
            hand: AtomicUsize::new(0),
            n_frames,
        }
    }
}

impl ReplacementPolicy for ClockPolicy {
    fn name(&self) -> &'static str {
        "clock"
    }

    fn touch(&self, frame: FrameId) {
        // Test-first: if the bit is already set (the common case for a hot
        // frame) a plain load keeps the line in the Shared state everywhere,
        // where an unconditional fetch_or would invalidate it on every hit.
        let i = frame.0 as usize;
        if !self.ref_bits.get(i) {
            self.ref_bits.set(i);
        }
    }

    fn admit(&self, frame: FrameId) {
        // A freshly claimed frame starts with its reference bit set so it
        // survives the sweep currently in flight.
        self.ref_bits.set(frame.0 as usize);
    }

    fn evict(&self, frame: FrameId) {
        self.ref_bits.clear(frame.0 as usize);
    }

    /// Advance the CLOCK hand to the next eviction candidate: an occupied
    /// frame whose reference bit is clear. Reference bits seen along the
    /// way get their second chance (cleared). Returns `None` when a bounded
    /// sweep finds no candidate (e.g. everything is freshly referenced and
    /// pinned).
    fn victim(&self, occupied: &AtomicBitmap) -> Option<FrameId> {
        if self.n_frames == 0 {
            return None;
        }
        // Two full sweeps: the first clears reference bits, the second is
        // then guaranteed to find one unless everything is re-referenced
        // concurrently.
        for _ in 0..self.n_frames * 2 {
            // relaxed: the hand is a rotor, not a lock; concurrent sweeps
            // interleaving over it only change which frame each inspects.
            let i = self.hand.fetch_add(1, Ordering::Relaxed) % self.n_frames;
            if !occupied.get(i) {
                continue;
            }
            if self.ref_bits.clear(i) {
                continue; // had a reference bit; second chance
            }
            return Some(FrameId(i as u32));
        }
        None
    }

    fn alloc_hint(&self) -> usize {
        // Start allocation scans at the hand: frames the sweep just
        // vacated sit right behind it.
        // relaxed: the hand is only a search-start hint; any value works.
        self.hand.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for ClockPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClockPolicy")
            .field("frames", &self.n_frames)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full(n: usize) -> (ClockPolicy, AtomicBitmap) {
        let p = ClockPolicy::new(n);
        let occ = AtomicBitmap::new(n);
        for i in 0..n {
            occ.set(i);
            p.admit(FrameId(i as u32));
        }
        (p, occ)
    }

    #[test]
    fn second_chances_then_victim() {
        let (p, occ) = full(3);
        // All frames have their reference bit set; the first sweep clears
        // them, then the second finds a victim.
        let v = p.victim(&occ).expect("a victim after ref bits cleared");
        assert!((v.0 as usize) < 3);
        // Touch a frame: it survives the next victim search longer.
        p.touch(FrameId(1));
        let v2 = p.victim(&occ).expect("victim");
        assert_ne!(v2, FrameId(1));
    }

    #[test]
    fn skips_unoccupied() {
        let p = ClockPolicy::new(4);
        let occ = AtomicBitmap::new(4);
        occ.set(2);
        p.admit(FrameId(2));
        // Only frame 2 is occupied; after its second chance it must be the
        // victim.
        assert_eq!(p.victim(&occ), Some(FrameId(2)));
    }

    #[test]
    fn empty_pool_has_no_victims() {
        let p = ClockPolicy::new(2);
        assert!(p.victim(&AtomicBitmap::new(2)).is_none());
        let zero = ClockPolicy::new(0);
        assert!(zero.victim(&AtomicBitmap::new(0)).is_none());
    }
}
