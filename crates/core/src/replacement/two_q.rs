//! Scan-resistant LRU-2Q replacement (Johnson & Shasha, VLDB '94,
//! adapted to a lock-free hit path).
//!
//! Frames enter a probationary FIFO (`A1in`). Promotion into the
//! protected main queue (`Am`) happens *lazily at victim time* and only
//! for frames touched at least twice since admission — a one-pass scan
//! touches each page once (the access that loaded it), so scan pages die
//! in `A1in` without displacing the hot set in `Am`. The hit path sets at
//! most one bit in a padded bitmap; all structural moves happen under a
//! mutex on the (already synchronized) victim/admit/evict paths.

use parking_lot::Mutex;
use spitfire_sync::atomic::{AtomicUsize, Ordering};
use spitfire_sync::AtomicBitmap;

use super::ReplacementPolicy;
use crate::types::FrameId;

/// Sentinel link: "no node".
const NIL: u32 = u32::MAX;

/// Not on any queue.
const L_NONE: u8 = 0;
/// On the probationary FIFO.
const L_A1: u8 = 1;
/// On the protected main queue.
const L_AM: u8 = 2;

#[derive(Clone, Copy)]
struct Queue {
    head: u32,
    tail: u32,
    len: usize,
}

impl Queue {
    const EMPTY: Queue = Queue {
        head: NIL,
        tail: NIL,
        len: 0,
    };
}

/// Intrusive links shared by both queues (a frame is on at most one).
struct TwoQState {
    /// Toward the head (newer end) of the owning queue.
    next: Vec<u32>,
    /// Toward the tail (older end) of the owning queue.
    prev: Vec<u32>,
    list: Vec<u8>,
    a1: Queue,
    am: Queue,
}

impl TwoQState {
    fn queue_mut(&mut self, which: u8) -> &mut Queue {
        if which == L_A1 {
            &mut self.a1
        } else {
            &mut self.am
        }
    }

    fn unlink(&mut self, i: usize) {
        let which = self.list[i];
        if which == L_NONE {
            return;
        }
        let (p, n) = (self.prev[i], self.next[i]);
        let q = self.queue_mut(which);
        if q.tail == i as u32 {
            q.tail = n;
        }
        if q.head == i as u32 {
            q.head = p;
        }
        q.len -= 1;
        if p != NIL {
            self.next[p as usize] = n;
        }
        if n != NIL {
            self.prev[n as usize] = p;
        }
        self.list[i] = L_NONE;
    }

    fn push_head(&mut self, i: usize, which: u8) {
        let head = self.queue_mut(which).head;
        self.prev[i] = head;
        self.next[i] = NIL;
        if head != NIL {
            self.next[head as usize] = i as u32;
        }
        let q = self.queue_mut(which);
        q.head = i as u32;
        if q.tail == NIL {
            q.tail = i as u32;
        }
        q.len += 1;
        self.list[i] = which;
    }

    /// Move `i` to the head of `which` (promotion or second-chance
    /// rotation).
    fn move_to(&mut self, i: usize, which: u8) {
        self.unlink(i);
        self.push_head(i, which);
    }
}

/// LRU-2Q policy: two touched bits per frame on the hit path, two
/// intrusive queues under a mutex everywhere else.
pub struct TwoQPolicy {
    /// Set by the first touch since admission. Padded like CLOCK's
    /// reference bits — hit-path-hot.
    touched_once: AtomicBitmap,
    /// Set by the second and later touches; this is the bit that earns
    /// promotion out of the probationary FIFO and survival in `Am`.
    touched_again: AtomicBitmap,
    state: Mutex<TwoQState>,
    /// Rotor spreading allocation scan starts across the bitmap.
    alloc_rotor: AtomicUsize,
    n_frames: usize,
}

impl TwoQPolicy {
    /// A 2Q instance for a pool of `n_frames` frames.
    pub fn new(n_frames: usize) -> Self {
        TwoQPolicy {
            touched_once: AtomicBitmap::new_padded(n_frames),
            touched_again: AtomicBitmap::new_padded(n_frames),
            state: Mutex::new(TwoQState {
                next: vec![NIL; n_frames],
                prev: vec![NIL; n_frames],
                list: vec![L_NONE; n_frames],
                a1: Queue::EMPTY,
                am: Queue::EMPTY,
            }),
            alloc_rotor: AtomicUsize::new(0),
            n_frames,
        }
    }

    fn victim_locked(&self, st: &mut TwoQState) -> Option<FrameId> {
        let total = st.a1.len + st.am.len;
        if total == 0 {
            return None;
        }
        // Keep roughly a quarter of the tracked frames probationary
        // (2Q's Kin); at or above that, evictions come from A1in, so
        // protected Am frames only age out once probation has drained
        // below target.
        let a1_target = (total / 4).max(1);
        // Frames examined on Am without finding an unreferenced one; once
        // a full pass came up empty, fall back to evicting probation.
        let mut am_seen = 0usize;
        for _ in 0..2 * total + 4 {
            let use_a1 =
                st.a1.len > 0 && (st.a1.len >= a1_target || st.am.len == 0 || am_seen >= st.am.len);
            if use_a1 {
                let t = st.a1.tail;
                let i = t as usize;
                if self.touched_again.get(i) {
                    // Touched at least twice while on probation: promote.
                    // The bit is consumed — surviving Am requires fresh
                    // touches.
                    self.touched_again.clear(i);
                    st.move_to(i, L_AM);
                    continue;
                }
                // Scan-resistance in action: at most once-touched, evict.
                // Rotate to the head so a rejected (pinned) candidate does
                // not wedge the tail.
                st.move_to(i, L_A1);
                return Some(FrameId(t));
            } else if st.am.len > 0 {
                let t = st.am.tail;
                let i = t as usize;
                st.move_to(i, L_AM);
                if self.touched_again.get(i) {
                    // Second chance, CLOCK-style.
                    self.touched_again.clear(i);
                    am_seen += 1;
                    continue;
                }
                return Some(FrameId(t));
            } else {
                return None;
            }
        }
        None
    }
}

impl ReplacementPolicy for TwoQPolicy {
    fn name(&self) -> &'static str {
        "2q"
    }

    fn touch(&self, frame: FrameId) {
        // Test-first on both bits: a hot frame (both set) costs two shared
        // loads and zero stores.
        let i = frame.0 as usize;
        if !self.touched_once.get(i) {
            self.touched_once.set(i);
        } else if !self.touched_again.get(i) {
            self.touched_again.set(i);
        }
    }

    fn admit(&self, frame: FrameId) {
        let i = frame.0 as usize;
        self.touched_once.clear(i);
        self.touched_again.clear(i);
        let mut st = self.state.lock();
        if st.list[i] == L_NONE {
            st.push_head(i, L_A1);
        }
    }

    fn evict(&self, frame: FrameId) {
        let i = frame.0 as usize;
        self.touched_once.clear(i);
        self.touched_again.clear(i);
        self.state.lock().unlink(i);
    }

    fn victim(&self, _occupied: &AtomicBitmap) -> Option<FrameId> {
        self.victim_locked(&mut self.state.lock())
    }

    fn victims(&self, _occupied: &AtomicBitmap, max: usize, out: &mut Vec<FrameId>) {
        // One lock acquisition per maintenance batch instead of per frame.
        let mut st = self.state.lock();
        for _ in 0..max {
            match self.victim_locked(&mut st) {
                Some(f) => out.push(f),
                None => break,
            }
        }
    }

    fn alloc_hint(&self) -> usize {
        // relaxed: monotone rotor, only used to spread allocation scan
        // start positions; no ordering needed.
        self.alloc_rotor.fetch_add(1, Ordering::Relaxed) % self.n_frames.max(1)
    }
}

impl std::fmt::Debug for TwoQPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("TwoQPolicy")
            .field("frames", &self.n_frames)
            .field("a1_len", &st.a1.len)
            .field("am_len", &st.am.len)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn occ(n: usize) -> AtomicBitmap {
        let b = AtomicBitmap::new(n);
        for i in 0..n {
            b.set(i);
        }
        b
    }

    /// Simulate the manager's wiring: admission plus the touch from the
    /// access that loaded the page.
    fn load(p: &TwoQPolicy, f: FrameId) {
        p.admit(f);
        p.touch(f);
    }

    #[test]
    fn once_touched_frames_die_in_probation() {
        let p = TwoQPolicy::new(8);
        let occ = occ(8);
        // Hot pair: loaded and re-touched (≥ 2 accesses).
        for f in [FrameId(0), FrameId(1)] {
            load(&p, f);
            p.touch(f);
        }
        // Scan: loaded once each, never touched again.
        for i in 2..8 {
            load(&p, FrameId(i));
        }
        // Victims must be exactly the scan frames; the hot pair gets
        // promoted to Am on the way.
        let mut victims = Vec::new();
        for _ in 0..6 {
            let v = p.victim(&occ).expect("victim");
            occ.clear(v.0 as usize);
            p.evict(v);
            victims.push(v.0);
        }
        victims.sort_unstable();
        assert_eq!(victims, vec![2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn am_uses_second_chances() {
        let p = TwoQPolicy::new(4);
        let occ = occ(4);
        for i in 0..4 {
            load(&p, FrameId(i));
            p.touch(FrameId(i)); // everyone promoted eventually
        }
        // Re-touch only frame 3 after its promotion bit is consumed.
        let first = p.victim(&occ).expect("victim");
        p.touch(FrameId(3));
        p.touch(FrameId(3));
        assert_ne!(first, FrameId(3), "tail order starts at the oldest");
        occ.clear(first.0 as usize);
        p.evict(first);
        let second = p.victim(&occ).expect("victim");
        assert_ne!(second, FrameId(3), "re-touched Am frame must survive");
    }

    #[test]
    fn empty_and_idempotent_ops() {
        let p = TwoQPolicy::new(3);
        assert!(p.victim(&AtomicBitmap::new(3)).is_none());
        p.evict(FrameId(2)); // never admitted: no-op
        p.admit(FrameId(1));
        p.admit(FrameId(1)); // double admit: no-op
        let b = AtomicBitmap::new(3);
        b.set(1);
        assert_eq!(p.victim(&b), Some(FrameId(1)));
    }
}
