//! SIEVE replacement (Zhang et al., NSDI '24): insertion-ordered queue,
//! one visited bit per frame, and a hand that moves from old to new
//! evicting the first unvisited frame. Hot frames are never relinked —
//! the hit path only sets a bit — so `touch` stays as cheap as CLOCK's.

use parking_lot::Mutex;
use spitfire_sync::atomic::{AtomicUsize, Ordering};
use spitfire_sync::AtomicBitmap;

use super::ReplacementPolicy;
use crate::types::FrameId;

/// Sentinel link: "no node".
const NIL: u32 = u32::MAX;

/// Intrusive insertion-order list over dense frame ids, plus the SIEVE
/// hand. Only taken on admit/evict/victim — never on the hit path.
struct SieveState {
    /// Toward newer frames (`next[tail]` is the second-oldest).
    next: Vec<u32>,
    /// Toward older frames (`prev[head]` is the second-newest).
    prev: Vec<u32>,
    in_list: Vec<bool>,
    /// Newest admitted frame.
    head: u32,
    /// Oldest admitted frame (where a fresh hand starts).
    tail: u32,
    /// Next frame the sweep examines; `NIL` restarts at the tail.
    hand: u32,
    len: usize,
}

impl SieveState {
    fn unlink(&mut self, i: usize) {
        if !self.in_list[i] {
            return;
        }
        let (p, n) = (self.prev[i], self.next[i]);
        if self.hand == i as u32 {
            self.hand = n;
        }
        match p {
            NIL => self.tail = n,
            p => self.next[p as usize] = n,
        }
        match n {
            NIL => self.head = p,
            n => self.prev[n as usize] = p,
        }
        self.in_list[i] = false;
        self.len -= 1;
    }

    fn push_head(&mut self, i: usize) {
        self.prev[i] = self.head;
        self.next[i] = NIL;
        if self.head != NIL {
            self.next[self.head as usize] = i as u32;
        }
        self.head = i as u32;
        if self.tail == NIL {
            self.tail = i as u32;
        }
        self.in_list[i] = true;
        self.len += 1;
    }
}

/// SIEVE policy: lock-free visited bits on the hit path, an insertion
/// queue under a mutex on the (already synchronized) alloc/evict paths.
pub struct SievePolicy {
    /// Padded for the same reason as CLOCK's reference bits: every buffer
    /// hit may set a visited bit, and dense bits would share cache lines.
    visited: AtomicBitmap,
    state: Mutex<SieveState>,
    /// Rotor spreading allocation scan starts across the bitmap.
    alloc_rotor: AtomicUsize,
    n_frames: usize,
}

impl SievePolicy {
    /// A SIEVE instance for a pool of `n_frames` frames.
    pub fn new(n_frames: usize) -> Self {
        SievePolicy {
            visited: AtomicBitmap::new_padded(n_frames),
            state: Mutex::new(SieveState {
                next: vec![NIL; n_frames],
                prev: vec![NIL; n_frames],
                in_list: vec![false; n_frames],
                head: NIL,
                tail: NIL,
                hand: NIL,
                len: 0,
            }),
            alloc_rotor: AtomicUsize::new(0),
            n_frames,
        }
    }

    fn victim_locked(&self, st: &mut SieveState) -> Option<FrameId> {
        if st.len == 0 {
            return None;
        }
        let mut cur = if st.hand != NIL { st.hand } else { st.tail };
        // Two passes: the first may clear every visited bit, the second
        // then finds the oldest unvisited frame.
        for _ in 0..st.len * 2 + 2 {
            if cur == NIL {
                cur = st.tail;
                if cur == NIL {
                    return None;
                }
            }
            let i = cur as usize;
            let nxt = st.next[i];
            st.hand = nxt;
            if self.visited.get(i) {
                self.visited.clear(i);
                cur = nxt;
                continue;
            }
            return Some(FrameId(cur));
        }
        None
    }
}

impl ReplacementPolicy for SievePolicy {
    fn name(&self) -> &'static str {
        "sieve"
    }

    fn touch(&self, frame: FrameId) {
        // Test-first, like CLOCK: a hot frame costs one shared load.
        let i = frame.0 as usize;
        if !self.visited.get(i) {
            self.visited.set(i);
        }
    }

    fn admit(&self, frame: FrameId) {
        let i = frame.0 as usize;
        // New frames start unvisited: surviving the first sweep requires a
        // real (re-)reference.
        self.visited.clear(i);
        let mut st = self.state.lock();
        if !st.in_list[i] {
            st.push_head(i);
        }
    }

    fn evict(&self, frame: FrameId) {
        let i = frame.0 as usize;
        self.visited.clear(i);
        self.state.lock().unlink(i);
    }

    fn victim(&self, _occupied: &AtomicBitmap) -> Option<FrameId> {
        self.victim_locked(&mut self.state.lock())
    }

    fn victims(&self, _occupied: &AtomicBitmap, max: usize, out: &mut Vec<FrameId>) {
        // One lock acquisition per maintenance batch instead of per frame.
        let mut st = self.state.lock();
        for _ in 0..max {
            match self.victim_locked(&mut st) {
                Some(f) => out.push(f),
                None => break,
            }
        }
    }

    fn alloc_hint(&self) -> usize {
        // relaxed: monotone rotor, only used to spread allocation scan
        // start positions; no ordering needed.
        self.alloc_rotor.fetch_add(1, Ordering::Relaxed) % self.n_frames.max(1)
    }
}

impl std::fmt::Debug for SievePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SievePolicy")
            .field("frames", &self.n_frames)
            .field("tracked", &self.state.lock().len)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full(n: usize) -> (SievePolicy, AtomicBitmap) {
        let p = SievePolicy::new(n);
        let occ = AtomicBitmap::new(n);
        for i in 0..n {
            occ.set(i);
            p.admit(FrameId(i as u32));
        }
        (p, occ)
    }

    #[test]
    fn evicts_oldest_unvisited_first() {
        let (p, occ) = full(4);
        // Nothing visited: the oldest admitted frame (0) goes first.
        assert_eq!(p.victim(&occ), Some(FrameId(0)));
        // Visit frame 1: the hand skips it (clearing the bit) and takes 2.
        p.touch(FrameId(1));
        assert_eq!(p.victim(&occ), Some(FrameId(2)));
    }

    #[test]
    fn visited_frames_get_one_more_round() {
        let (p, occ) = full(2);
        p.touch(FrameId(0));
        p.touch(FrameId(1));
        // Both visited: the first pass clears, the wrap evicts the oldest.
        assert_eq!(p.victim(&occ), Some(FrameId(0)));
    }

    #[test]
    fn unlink_fixes_hand_and_order() {
        let (p, occ) = full(3);
        assert_eq!(p.victim(&occ), Some(FrameId(0)));
        occ.clear(0);
        p.evict(FrameId(0));
        // Hand sits on frame 1 now; re-admitting 0 puts it at the head
        // (newest), so the sweep order is 1, 2, then 0.
        occ.set(0);
        p.admit(FrameId(0));
        assert_eq!(p.victim(&occ), Some(FrameId(1)));
        assert_eq!(p.victim(&occ), Some(FrameId(2)));
        assert_eq!(p.victim(&occ), Some(FrameId(0)));
    }

    #[test]
    fn empty_has_no_victim() {
        let p = SievePolicy::new(3);
        assert!(p.victim(&AtomicBitmap::new(3)).is_none());
        // Double-evict and evict-without-admit are harmless no-ops.
        p.evict(FrameId(1));
        assert!(p.victim(&AtomicBitmap::new(3)).is_none());
    }
}
