//! Retry/backoff policy for device I/O.
//!
//! Injected transient faults (see `spitfire_device::fault`) are absorbed
//! here with a bounded exponential micro-backoff; injected fatal faults —
//! and transients that keep failing past the budget — escalate to
//! [`BufferError::FatalIo`] with a `during` label naming the path that was
//! executing. Non-injected device errors (bounds violations, missing
//! pages, bad page sizes) pass through unchanged so callers can keep
//! matching on them.

use std::time::{Duration, Instant};

use spitfire_obs::{record_op, Op};

use crate::error::BufferError;
use crate::metrics::BufferMetrics;

/// Maximum retries of one operation after transient failures.
pub(crate) const IO_RETRY_LIMIT: u32 = 8;

/// Retry budget for *opportunistic* I/O — background maintenance
/// pre-evictions. Failing fast is correct there: an abandoned pre-eviction
/// just leaves the page for the inline path (which retries with the full
/// [`IO_RETRY_LIMIT`]), while burning the whole backoff schedule per page
/// would stall an entire write-back batch behind one flaky device.
pub(crate) const MAINT_RETRY_LIMIT: u32 = 2;

/// Run `f`, retrying transient device errors up to [`IO_RETRY_LIMIT`]
/// times with exponential micro-backoff (1 µs, 2 µs, ... capped at 64 µs).
/// Each retry bumps `metrics.io_retries` and emits an `io_retry` obs event;
/// escalation bumps `metrics.io_fatal`.
pub(crate) fn retry_device_io<T>(
    metrics: &BufferMetrics,
    during: &'static str,
    f: impl FnMut() -> spitfire_device::Result<T>,
) -> Result<T, BufferError> {
    retry_device_io_n(metrics, during, IO_RETRY_LIMIT, f)
}

/// [`retry_device_io`] with a caller-chosen retry budget (see
/// [`MAINT_RETRY_LIMIT`] for when a smaller one is right).
pub(crate) fn retry_device_io_n<T>(
    metrics: &BufferMetrics,
    during: &'static str,
    limit: u32,
    mut f: impl FnMut() -> spitfire_device::Result<T>,
) -> Result<T, BufferError> {
    let mut attempt = 0u32;
    loop {
        match f() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_retryable() && attempt < limit => {
                attempt += 1;
                metrics.record_io_retry();
                record_op(Op::IoRetry, Some(Instant::now()), u64::MAX, during);
                std::thread::sleep(Duration::from_micros(1 << attempt.min(6)));
            }
            Err(e) if e.is_injected() => {
                metrics.record_io_fatal();
                return Err(BufferError::FatalIo { during, source: e });
            }
            Err(e) => return Err(BufferError::Device(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spitfire_device::DeviceError;

    #[test]
    fn transient_errors_are_absorbed() {
        let metrics = BufferMetrics::new();
        let mut failures = 3;
        let out = retry_device_io(&metrics, "test op", || {
            if failures > 0 {
                failures -= 1;
                Err(DeviceError::InjectedTransient { op: "read" })
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42);
        assert_eq!(metrics.snapshot().io_retries, 3);
        assert_eq!(metrics.snapshot().io_fatal, 0);
    }

    #[test]
    fn fatal_errors_escalate_with_context() {
        let metrics = BufferMetrics::new();
        let out: Result<(), _> = retry_device_io(&metrics, "ssd write", || {
            Err(DeviceError::InjectedFatal { op: "write" })
        });
        match out.unwrap_err() {
            BufferError::FatalIo { during, source } => {
                assert_eq!(during, "ssd write");
                assert_eq!(source, DeviceError::InjectedFatal { op: "write" });
            }
            other => panic!("expected FatalIo, got {other:?}"),
        }
        assert_eq!(metrics.snapshot().io_fatal, 1);
    }

    #[test]
    fn retry_budget_exhaustion_escalates() {
        let metrics = BufferMetrics::new();
        let out: Result<(), _> = retry_device_io(&metrics, "pool read", || {
            Err(DeviceError::InjectedTransient { op: "read" })
        });
        assert!(matches!(out, Err(BufferError::FatalIo { .. })));
        assert_eq!(metrics.snapshot().io_retries, u64::from(IO_RETRY_LIMIT));
        assert_eq!(metrics.snapshot().io_fatal, 1);
    }

    #[test]
    fn contract_errors_pass_through_unwrapped() {
        let metrics = BufferMetrics::new();
        let out: Result<(), _> =
            retry_device_io(&metrics, "ssd read", || Err(DeviceError::PageNotFound(7)));
        assert!(matches!(
            out,
            Err(BufferError::Device(DeviceError::PageNotFound(7)))
        ));
        assert_eq!(metrics.snapshot().io_retries, 0);
        assert_eq!(metrics.snapshot().io_fatal, 0);
    }
}
