//! Shared page descriptors (paper §5.1, Figure 4).
//!
//! The unified mapping table stores one [`SharedPageDesc`] per logical page.
//! The descriptor records where copies of the page live (DRAM and/or NVM),
//! how many threads currently use each copy, and whether each copy is
//! dirty. Migrations move a copy through the [`CopyState::Busy`] /
//! [`CopyState::Loading`] states, which is the non-blocking formulation of
//! the paper's per-tier migration latches: a fetch that encounters a copy
//! in a transitional state waits on the descriptor's condition variable
//! instead of spinning on a latch, and accesses to the *other* tier's copy
//! proceed unimpeded — exactly the concurrency the fine-grained latching
//! protocol of §5.2 is designed to allow.

use parking_lot::{Condvar, Mutex};
use spitfire_sync::atomic::AtomicU64;
use spitfire_sync::{CachePadded, PinWord};

use crate::types::{FrameId, PageId};

/// Where a DRAM-resident copy keeps its bytes.
///
/// A full frame holds the complete page. Fine-grained and mini layouts
/// (paper §2.1, Figure 2) hold a partial copy backed by the NVM-resident
/// page; they are introduced by the `fgpage` module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum FrameRef {
    /// A whole-page frame in the tier's pool.
    Full(FrameId),
    /// A cache-line-grained page: a full-size frame whose content is loaded
    /// granule-by-granule from the backing NVM copy.
    Fine(Box<crate::fgpage::FinePage>),
    /// A mini page: at most 16 granule slots carved from a shared slab
    /// frame.
    Mini(Box<crate::fgpage::MiniPage>),
}

impl FrameRef {
    /// The pool frame that backs this reference (the slab frame for minis).
    pub(crate) fn frame(&self) -> FrameId {
        match self {
            FrameRef::Full(f) => *f,
            FrameRef::Fine(fp) => fp.frame,
            FrameRef::Mini(mp) => mp.slot.slab,
        }
    }
}

/// Lifecycle of one tier's copy of a page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum CopyState {
    /// Being installed by a migration; not yet readable. Waiters block on
    /// the descriptor condvar until it becomes `Resident`.
    Loading,
    /// Present and usable. `pins` counts outstanding guards; `dirty` means
    /// the copy is newer than the tier below it.
    Resident {
        /// Where the bytes live.
        frame: FrameRef,
        /// Number of outstanding page guards on this copy.
        pins: u32,
        /// Whether this copy must be written down before being dropped.
        dirty: bool,
    },
    /// Under migration (eviction or promotion-source drain): existing pins
    /// may still drain, but no new pins are granted.
    Busy {
        /// Where the bytes live.
        frame: FrameRef,
        /// Pins still draining.
        pins: u32,
        /// Dirty flag carried through the migration.
        dirty: bool,
    },
}

impl CopyState {
    /// Pins currently held on this copy.
    #[cfg(test)]
    pub(crate) fn pins(&self) -> u32 {
        match self {
            CopyState::Loading => 0,
            CopyState::Resident { pins, .. } | CopyState::Busy { pins, .. } => *pins,
        }
    }

    /// Whether this copy is in a transitional state.
    #[cfg(test)]
    pub(crate) fn in_transition(&self) -> bool {
        matches!(self, CopyState::Loading | CopyState::Busy { .. })
    }
}

/// Mutable per-page state guarded by the descriptor mutex.
#[derive(Debug, Default)]
pub(crate) struct PageState {
    /// The DRAM-resident copy, if any.
    pub dram: Option<CopyState>,
    /// The NVM-resident copy, if any.
    pub nvm: Option<CopyState>,
    /// A shadow-copy operation (migration or write-back) is in flight on
    /// the DRAM copy. The slot stays `Resident` — readers keep pinning and
    /// the fast path keeps serving — but at most one shadow operation may
    /// claim a copy, and tier transitions must stand down until it
    /// resolves.
    pub shadow_dram: bool,
    /// Same for the NVM copy.
    pub shadow_nvm: bool,
}

impl PageState {
    /// Copy slot for `tier` (DRAM = tier 1 pool, NVM = tier 2 pool).
    pub(crate) fn slot_mut(&mut self, dram: bool) -> &mut Option<CopyState> {
        if dram {
            &mut self.dram
        } else {
            &mut self.nvm
        }
    }
}

/// Shared page descriptor stored in the mapping table (Figure 4).
///
/// # Optimistic pin words
///
/// The two [`PinWord`]s let the fetch fast path pin a stably resident
/// copy without the mutex. They are opened and closed *only* under the
/// descriptor mutex, maintaining two invariants:
///
/// * `dram_pin` is open ⇔ the DRAM slot holds a `Resident` copy in a
///   full frame (fine-grained and mini copies never open the word —
///   their I/O needs the mutex anyway);
/// * `nvm_pin` is open ⇔ the NVM slot holds a `Resident` full-frame
///   copy **and** no DRAM copy exists. A DRAM copy may be newer than the
///   NVM copy, so serving NVM optimistically while one exists would read
///   stale bytes.
///
/// Any transition out of `Resident` closes the word first and only
/// proceeds if the optimistic pin count was zero (see
/// [`PinWord::close`]); the total pin count of a copy is the mutex
/// `pins` field plus its word's optimistic count.
///
/// # Layout
///
/// The pin words are the only fields the lock-free hit path writes, and
/// every fetch CASes one of them. Each sits on its own cache line
/// ([`CachePadded`]) so that (a) hammering a page's DRAM word never
/// invalidates the line holding its NVM word or the descriptor mutex, and
/// (b) two descriptors allocated back-to-back never share a pin-word
/// line. This is the ROADMAP "flat hit-path scaling" fix: before padding,
/// unrelated hot pages could ping-pong one line between cores.
#[derive(Debug)]
pub(crate) struct SharedPageDesc {
    /// The logical page this descriptor tracks.
    pub pid: PageId,
    /// Copy states; all transitions take this mutex (never held across
    /// device I/O).
    pub state: Mutex<PageState>,
    /// Signalled on every state transition; waiters re-check under the
    /// mutex.
    pub cond: Condvar,
    /// Optimistic pin word for the DRAM copy (own cache line).
    pub dram_pin: CachePadded<PinWord>,
    /// Optimistic pin word for the NVM copy (own cache line).
    pub nvm_pin: CachePadded<PinWord>,
    /// Last checkpoint epoch this page was recorded dirty in — a hint that
    /// lets `mark_dirty` skip the shared dirty-set mutex for repeat writes
    /// within one epoch. `u64::MAX` = never recorded.
    pub ckpt_epoch: AtomicU64,
}

impl SharedPageDesc {
    /// A descriptor for `pid` with no resident copies.
    pub(crate) fn new(pid: PageId) -> Self {
        SharedPageDesc {
            pid,
            state: Mutex::new(PageState::default()),
            cond: Condvar::new(),
            dram_pin: CachePadded::new(PinWord::new()),
            nvm_pin: CachePadded::new(PinWord::new()),
            ckpt_epoch: AtomicU64::new(u64::MAX),
        }
    }

    /// The optimistic pin word guarding the copy in the given slot.
    pub(crate) fn pin_word(&self, dram: bool) -> &PinWord {
        if dram {
            &self.dram_pin
        } else {
            &self.nvm_pin
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_state_helpers() {
        let r = CopyState::Resident {
            frame: FrameRef::Full(FrameId(1)),
            pins: 2,
            dirty: false,
        };
        assert_eq!(r.pins(), 2);
        assert!(!r.in_transition());
        let b = CopyState::Busy {
            frame: FrameRef::Full(FrameId(1)),
            pins: 1,
            dirty: true,
        };
        assert!(b.in_transition());
        assert_eq!(b.pins(), 1);
        assert!(CopyState::Loading.in_transition());
        assert_eq!(CopyState::Loading.pins(), 0);
    }

    #[test]
    fn slot_mut_selects_tier() {
        let mut st = PageState::default();
        *st.slot_mut(true) = Some(CopyState::Loading);
        assert!(st.dram.is_some());
        assert!(st.nvm.is_none());
        *st.slot_mut(false) = Some(CopyState::Loading);
        assert!(st.nvm.is_some());
    }

    #[test]
    fn frame_ref_full_reports_frame() {
        assert_eq!(FrameRef::Full(FrameId(9)).frame(), FrameId(9));
    }

    #[test]
    fn pin_words_sit_on_distinct_cache_lines() {
        let d = SharedPageDesc::new(PageId(1));
        let a = std::ptr::addr_of!(d.dram_pin) as usize;
        let b = std::ptr::addr_of!(d.nvm_pin) as usize;
        assert_eq!(a % spitfire_sync::CACHE_LINE, 0);
        assert_eq!(b % spitfire_sync::CACHE_LINE, 0);
        assert!(a.abs_diff(b) >= spitfire_sync::CACHE_LINE);
    }
}
