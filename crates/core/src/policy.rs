//! The probabilistic multi-tier data migration policy (paper §3).
//!
//! A policy is the tuple ⟨D_r, D_w, N_r, N_w⟩ of probabilities with which
//! Spitfire routes data *through* DRAM (D) or NVM (N) on reads (r) and
//! writes (w):
//!
//! * `D_r` — probability of promoting an NVM-resident page to DRAM while
//!   serving a read (§3.1). `1.0` is the eager policy of a classic buffer
//!   manager; `0.01` is Spitfire's lazy default.
//! * `D_w` — probability of routing a write through DRAM rather than
//!   writing NVM directly (§3.2).
//! * `N_r` — probability of admitting an SSD page into the NVM buffer on a
//!   read miss, as opposed to loading it straight into DRAM (§3.3).
//! * `N_w` — probability of admitting a dirty page evicted from DRAM into
//!   the NVM buffer, as opposed to writing it straight to SSD (§3.4).
//!
//! The HyMem baseline replaces the `N_w` coin with an admission-queue test
//! ([`NvmAdmission::Queue`], paper §1/§6.5) and never admits SSD reads to
//! NVM (`N_r = 0`).

use spitfire_sync::atomic::{AtomicU32, AtomicU8, Ordering};

use serde::{Deserialize, Serialize};

/// Fixed-point denominator for probabilities stored in atomics.
const SCALE: u32 = 1_000_000;

/// How NVM admission on DRAM eviction is decided.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NvmAdmission {
    /// Admit with probability `N_w` (Spitfire).
    Probabilistic,
    /// Admit iff the page was recently denied admission (HyMem's queue,
    /// paper §2.1). The queue capacity is half the NVM buffer's page count
    /// (§6.5).
    Queue,
}

/// A data migration policy ⟨D_r, D_w, N_r, N_w⟩.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationPolicy {
    /// Probability of NVM→DRAM promotion on read.
    pub dr: f64,
    /// Probability of routing writes through DRAM.
    pub dw: f64,
    /// Probability of SSD→NVM admission on read miss.
    pub nr: f64,
    /// Probability of DRAM→NVM admission on dirty eviction (ignored when
    /// `admission` is [`NvmAdmission::Queue`]).
    pub nw: f64,
    /// NVM admission mechanism.
    pub admission: NvmAdmission,
}

impl MigrationPolicy {
    /// Construct a probabilistic policy; each probability is clamped to
    /// `[0, 1]`.
    pub fn new(dr: f64, dw: f64, nr: f64, nw: f64) -> Self {
        MigrationPolicy {
            dr: dr.clamp(0.0, 1.0),
            dw: dw.clamp(0.0, 1.0),
            nr: nr.clamp(0.0, 1.0),
            nw: nw.clamp(0.0, 1.0),
            admission: NvmAdmission::Probabilistic,
        }
    }

    /// The eager policy ⟨1, 1, 1, 1⟩ — a traditional buffer manager that
    /// always migrates through every tier (Table 3, "Spitfire-Eager").
    pub fn eager() -> Self {
        MigrationPolicy::new(1.0, 1.0, 1.0, 1.0)
    }

    /// Spitfire's lazy policy ⟨0.01, 0.01, 0.2, 1⟩ (Table 3,
    /// "Spitfire-Lazy").
    pub fn lazy() -> Self {
        MigrationPolicy::new(0.01, 0.01, 0.2, 1.0)
    }

    /// The HyMem policy: eager DRAM migration, no SSD→NVM admission, and
    /// queue-based NVM admission on eviction (Table 3).
    pub fn hymem() -> Self {
        MigrationPolicy {
            dr: 1.0,
            dw: 1.0,
            nr: 0.0,
            nw: 1.0,
            admission: NvmAdmission::Queue,
        }
    }

    /// Probability that a page absent from DRAM is promoted within `n`
    /// read requests: `1 - (1 - D_r)^n` (paper §3.5, Theoretical Analysis).
    pub fn promotion_probability(&self, n: u32) -> f64 {
        1.0 - (1.0 - self.dr).powi(n as i32)
    }
}

impl Default for MigrationPolicy {
    fn default() -> Self {
        MigrationPolicy::lazy()
    }
}

impl std::fmt::Display for MigrationPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let adm = match self.admission {
            NvmAdmission::Probabilistic => format!("{}", self.nw),
            NvmAdmission::Queue => "AdmQueue".to_string(),
        };
        write!(
            f,
            "<Dr={}, Dw={}, Nr={}, Nw={}>",
            self.dr, self.dw, self.nr, adm
        )
    }
}

/// Lock-free cell holding the active policy so that the adaptive tuner
/// (paper §4) can swap it while worker threads are running.
///
/// Probabilities are stored as fixed-point millionths; coin flips compare a
/// uniform `u32` draw against the threshold, keeping the per-access policy
/// overhead to one atomic load.
#[derive(Debug)]
pub struct PolicyCell {
    dr: AtomicU32,
    dw: AtomicU32,
    nr: AtomicU32,
    nw: AtomicU32,
    admission: AtomicU8,
}

impl PolicyCell {
    /// A cell initialized to `policy`.
    pub fn new(policy: MigrationPolicy) -> Self {
        let cell = PolicyCell {
            dr: AtomicU32::new(0),
            dw: AtomicU32::new(0),
            nr: AtomicU32::new(0),
            nw: AtomicU32::new(0),
            admission: AtomicU8::new(0),
        };
        cell.store(policy);
        cell
    }

    fn to_fixed(p: f64) -> u32 {
        (p.clamp(0.0, 1.0) * SCALE as f64).round() as u32
    }

    /// Replace the active policy.
    pub fn store(&self, policy: MigrationPolicy) {
        // relaxed: the four probability fields are independent knobs; a
        // reader observing a half-updated policy just flips coins with a
        // mix of old and new probabilities, which is harmless — every
        // individual value is valid.
        self.dr.store(Self::to_fixed(policy.dr), Ordering::Relaxed);
        self.dw.store(Self::to_fixed(policy.dw), Ordering::Relaxed);
        self.nr.store(Self::to_fixed(policy.nr), Ordering::Relaxed);
        self.nw.store(Self::to_fixed(policy.nw), Ordering::Relaxed);
        let adm = match policy.admission {
            NvmAdmission::Probabilistic => 0,
            NvmAdmission::Queue => 1,
        };
        // relaxed: same torn-update argument as the probability fields.
        self.admission.store(adm, Ordering::Relaxed);
    }

    /// Snapshot of the active policy.
    pub fn load(&self) -> MigrationPolicy {
        // relaxed: advisory snapshot; fields may mix concurrent updates
        // (see `store`), and each value alone is meaningful.
        MigrationPolicy {
            dr: self.dr.load(Ordering::Relaxed) as f64 / SCALE as f64,
            dw: self.dw.load(Ordering::Relaxed) as f64 / SCALE as f64,
            nr: self.nr.load(Ordering::Relaxed) as f64 / SCALE as f64,
            nw: self.nw.load(Ordering::Relaxed) as f64 / SCALE as f64,
            admission: if self.admission.load(Ordering::Relaxed) == 0 {
                NvmAdmission::Probabilistic
            } else {
                NvmAdmission::Queue
            },
        }
    }

    #[inline]
    fn flip(threshold: &AtomicU32, draw: u32) -> bool {
        // relaxed: a coin flip against a possibly-stale threshold is still
        // a valid draw from either the old or new policy.
        let t = threshold.load(Ordering::Relaxed);
        // draw is uniform in [0, SCALE); t == SCALE always passes.
        draw % SCALE < t
    }

    /// Coin flip for `D_r` given a uniform random `draw`.
    #[inline]
    pub fn flip_dr(&self, draw: u32) -> bool {
        Self::flip(&self.dr, draw)
    }

    /// Coin flip for `D_w`.
    #[inline]
    pub fn flip_dw(&self, draw: u32) -> bool {
        Self::flip(&self.dw, draw)
    }

    /// Coin flip for `N_r`.
    #[inline]
    pub fn flip_nr(&self, draw: u32) -> bool {
        Self::flip(&self.nr, draw)
    }

    /// Coin flip for `N_w`.
    #[inline]
    pub fn flip_nw(&self, draw: u32) -> bool {
        Self::flip(&self.nw, draw)
    }

    #[inline]
    fn flip_with(threshold: &AtomicU32, draw: impl FnOnce() -> u32) -> bool {
        // relaxed: same stale-threshold argument as `flip`.
        let t = threshold.load(Ordering::Relaxed);
        // Policy-draw elision: degenerate probabilities are the common
        // case on hot paths (⟨0,0,·,·⟩ measurement configs, the eager
        // ⟨1,1,1,1⟩ preset), and their outcome needs no randomness — skip
        // the RNG entirely.
        if t == 0 {
            return false;
        }
        if t >= SCALE {
            return true;
        }
        draw() % SCALE < t
    }

    /// Coin flip for `D_r`, drawing lazily: `draw` is only invoked when
    /// the probability is strictly between 0 and 1.
    #[inline]
    pub fn flip_dr_with(&self, draw: impl FnOnce() -> u32) -> bool {
        Self::flip_with(&self.dr, draw)
    }

    /// Coin flip for `D_w` with a lazy draw.
    #[inline]
    pub fn flip_dw_with(&self, draw: impl FnOnce() -> u32) -> bool {
        Self::flip_with(&self.dw, draw)
    }

    /// Coin flip for `N_r` with a lazy draw.
    #[inline]
    pub fn flip_nr_with(&self, draw: impl FnOnce() -> u32) -> bool {
        Self::flip_with(&self.nr, draw)
    }

    /// Coin flip for `N_w` with a lazy draw.
    #[inline]
    pub fn flip_nw_with(&self, draw: impl FnOnce() -> u32) -> bool {
        Self::flip_with(&self.nw, draw)
    }

    /// Whether the queue mechanism decides NVM admission.
    #[inline]
    pub fn uses_admission_queue(&self) -> bool {
        // relaxed: either the old or new admission mode is acceptable
        // during a policy change; the flag guards no other memory.
        self.admission.load(Ordering::Relaxed) == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table3() {
        let h = MigrationPolicy::hymem();
        assert_eq!((h.dr, h.dw, h.nr), (1.0, 1.0, 0.0));
        assert_eq!(h.admission, NvmAdmission::Queue);

        let e = MigrationPolicy::eager();
        assert_eq!((e.dr, e.dw, e.nr, e.nw), (1.0, 1.0, 1.0, 1.0));

        let l = MigrationPolicy::lazy();
        assert_eq!((l.dr, l.dw, l.nr, l.nw), (0.01, 0.01, 0.2, 1.0));
        assert_eq!(l.admission, NvmAdmission::Probabilistic);
    }

    #[test]
    fn probabilities_are_clamped() {
        let p = MigrationPolicy::new(-0.5, 1.5, 0.3, 0.7);
        assert_eq!((p.dr, p.dw, p.nr, p.nw), (0.0, 1.0, 0.3, 0.7));
    }

    #[test]
    fn promotion_probability_converges_to_one() {
        let p = MigrationPolicy::new(0.01, 1.0, 1.0, 1.0);
        let one = p.promotion_probability(1);
        assert!((one - 0.01).abs() < 1e-12);
        assert!(p.promotion_probability(100) > 0.63);
        assert!(p.promotion_probability(1000) > 0.9999);
        // Eager promotes immediately.
        assert_eq!(MigrationPolicy::eager().promotion_probability(1), 1.0);
    }

    #[test]
    fn cell_round_trips() {
        let cell = PolicyCell::new(MigrationPolicy::lazy());
        let p = cell.load();
        assert!((p.dr - 0.01).abs() < 1e-6);
        assert!((p.nr - 0.2).abs() < 1e-6);
        cell.store(MigrationPolicy::hymem());
        assert!(cell.uses_admission_queue());
        assert_eq!(cell.load().nr, 0.0);
    }

    #[test]
    fn flips_respect_thresholds() {
        let cell = PolicyCell::new(MigrationPolicy::new(0.0, 1.0, 0.5, 0.25));
        // dr = 0: never fires.
        for draw in [0u32, 1, 999_999, u32::MAX] {
            assert!(!cell.flip_dr(draw));
        }
        // dw = 1: always fires.
        for draw in [0u32, 1, 999_999, u32::MAX] {
            assert!(cell.flip_dw(draw));
        }
        // nr = 0.5: empirical frequency close to half.
        let hits = (0..1_000_000u32)
            .filter(|&d| cell.flip_nr(d.wrapping_mul(2_654_435_761)))
            .count();
        let freq = hits as f64 / 1_000_000.0;
        assert!((freq - 0.5).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn lazy_flips_elide_degenerate_draws() {
        let cell = PolicyCell::new(MigrationPolicy::new(0.0, 1.0, 0.5, 0.25));
        // dr = 0 and dw = 1: decided without consuming a draw.
        assert!(!cell.flip_dr_with(|| panic!("draw for p = 0")));
        assert!(cell.flip_dw_with(|| panic!("draw for p = 1")));
        // Intermediate probabilities still draw and agree with the eager
        // variants.
        for d in [0u32, 250_000, 499_999, 500_000, 999_999, u32::MAX] {
            assert_eq!(cell.flip_nr_with(|| d), cell.flip_nr(d));
            assert_eq!(cell.flip_nw_with(|| d), cell.flip_nw(d));
        }
    }

    #[test]
    fn display_formats_policy() {
        assert_eq!(
            MigrationPolicy::eager().to_string(),
            "<Dr=1, Dw=1, Nr=1, Nw=1>"
        );
        assert_eq!(
            MigrationPolicy::hymem().to_string(),
            "<Dr=1, Dw=1, Nr=0, Nw=AdmQueue>"
        );
    }
}
