//! # Spitfire — a three-tier buffer manager for volatile and non-volatile memory
//!
//! This crate is the core of a from-scratch Rust reproduction of
//! *Spitfire: A Three-Tier Buffer Manager for Volatile and Non-Volatile
//! Memory* (Zhou, Arulraj, Pavlo, Cohen — SIGMOD 2021): a multi-threaded
//! buffer manager for a DRAM–NVM–SSD storage hierarchy.
//!
//! ## The idea
//!
//! Classic buffer managers assume data must be copied to DRAM before the
//! CPU can touch it. NVM (Intel Optane DC PMMs) breaks that assumption: the
//! CPU can operate on NVM-resident pages directly, at latencies close to
//! DRAM. Spitfire therefore makes all four data-placement decisions
//! *probabilistic* (paper §3):
//!
//! | knob  | decision                                                |
//! |-------|---------------------------------------------------------|
//! | `D_r` | promote NVM page to DRAM on read                        |
//! | `D_w` | route a write through DRAM instead of writing NVM       |
//! | `N_r` | admit an SSD page to NVM (vs. straight to DRAM) on read |
//! | `N_w` | admit a DRAM-evicted dirty page to NVM (vs. SSD)        |
//!
//! Lazy settings (e.g. the Spitfire-Lazy preset ⟨0.01, 0.01, 0.2, 1⟩) keep
//! only genuinely hot pages in DRAM, reduce DRAM↔NVM traffic, and lower the
//! duplication between the two buffers (the *inclusivity ratio*, §3.3). An
//! [`adaptive::AnnealingTuner`] adjusts the policy online (§4).
//!
//! ## Quick start
//!
//! Typed fetches ([`BufferManager::fetch_read`] /
//! [`BufferManager::fetch_write`]) make intent part of the guard's type:
//! only a [`WriteGuard`] has `write` methods, so writing through a
//! read-intent fetch is a compile error. Runtime mutators live on the
//! [`manager::Admin`] handle (`bm.admin()`), and the background
//! [`Maintenance`] service keeps eviction I/O off the fetch miss path:
//!
//! ```
//! use std::sync::Arc;
//! use spitfire_core::{BufferManager, BufferManagerConfig, MigrationPolicy};
//! use spitfire_device::TimeScale;
//!
//! let config = BufferManagerConfig::builder()
//!     .page_size(4096)
//!     .dram_capacity(16 * 4096)
//!     .nvm_capacity(64 * 4096)
//!     .policy(MigrationPolicy::lazy())
//!     .time_scale(TimeScale::ZERO) // no emulated delays in doc tests
//!     .watermarks(1.0 / 16.0, 1.0 / 8.0) // per-tier free-frame targets
//!     .build()
//!     .unwrap();
//! let bm = Arc::new(BufferManager::new(config).unwrap());
//!
//! // Background maintenance: pre-evicts CLOCK victims and batches dirty
//! // write-backs so a fetch miss is a free-list pop, not inline I/O.
//! let maintenance = bm.maintenance();
//! maintenance.start();
//!
//! // Runtime mutators are grouped behind one admin() handle.
//! bm.admin().set_policy(MigrationPolicy::eager());
//!
//! let pid = bm.allocate_page().unwrap();
//! {
//!     let guard = bm.fetch_write(pid).unwrap();
//!     guard.write(0, b"hello, tiered storage").unwrap();
//! }
//! let guard = bm.fetch_read(pid).unwrap();
//! let mut buf = [0u8; 21];
//! guard.read(0, &mut buf).unwrap();
//! assert_eq!(&buf, b"hello, tiered storage");
//! drop(guard);
//!
//! maintenance.stop(); // or just drop the handle
//! ```
//!
//! Around a simulated crash, park the workers first
//! ([`Maintenance::pause_for_crash`]), recover, then
//! [`Maintenance::resume`]. Single-threaded harnesses that need
//! reproducible schedules skip `start()` and drive cycles with
//! [`Maintenance::tick`].
//!
//! ## Module map
//!
//! * [`manager`] / [`BufferManager`] — fetch, migration, eviction (§5).
//! * [`background`] / [`Maintenance`] — watermark pre-eviction and batched
//!   write-back off the miss path.
//! * [`policy`] — the ⟨D_r, D_w, N_r, N_w⟩ taxonomy (§3) and presets
//!   (Table 3).
//! * [`adaptive`] — simulated-annealing policy tuning (§4).
//! * `fgpage` / `fgops` — cache-line-grained loading and mini pages
//!   (§2.1, Figures 2/11/12).
//! * [`metrics`] — tier hits, migration paths, inclusivity ratio (Table 2).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod adaptive;
pub mod advisor;
pub mod background;
mod config;
mod descriptor;
mod error;
mod fgops;
mod fgpage;
mod guard;
mod io;
pub mod manager;
pub mod metrics;
pub mod policy;
mod pool;
pub mod replacement;
mod types;

pub use background::{CycleStats, Maintenance};
pub use config::{
    BufferManagerConfig, BufferManagerConfigBuilder, ConfigError, Hierarchy, MaintenanceConfig,
};
pub use error::BufferError;
pub use guard::{PageGuard, ReadGuard, WriteGuard};
pub use manager::{Admin, BufferManager, MemoryPressure};
pub use metrics::{MetricsSnapshot, ShadowPath};
pub use policy::{MigrationPolicy, NvmAdmission, PolicyCell};
pub use replacement::{PolicyConfig, ReplacementPolicy};
pub use types::{AccessIntent, FrameId, MigrationPath, PageId, Tier};

/// Result alias for buffer manager operations.
pub type Result<T> = std::result::Result<T, BufferError>;
