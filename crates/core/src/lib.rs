//! # Spitfire — a three-tier buffer manager for volatile and non-volatile memory
//!
//! This crate is the core of a from-scratch Rust reproduction of
//! *Spitfire: A Three-Tier Buffer Manager for Volatile and Non-Volatile
//! Memory* (Zhou, Arulraj, Pavlo, Cohen — SIGMOD 2021): a multi-threaded
//! buffer manager for a DRAM–NVM–SSD storage hierarchy.
//!
//! ## The idea
//!
//! Classic buffer managers assume data must be copied to DRAM before the
//! CPU can touch it. NVM (Intel Optane DC PMMs) breaks that assumption: the
//! CPU can operate on NVM-resident pages directly, at latencies close to
//! DRAM. Spitfire therefore makes all four data-placement decisions
//! *probabilistic* (paper §3):
//!
//! | knob  | decision                                                |
//! |-------|---------------------------------------------------------|
//! | `D_r` | promote NVM page to DRAM on read                        |
//! | `D_w` | route a write through DRAM instead of writing NVM       |
//! | `N_r` | admit an SSD page to NVM (vs. straight to DRAM) on read |
//! | `N_w` | admit a DRAM-evicted dirty page to NVM (vs. SSD)        |
//!
//! Lazy settings (e.g. the Spitfire-Lazy preset ⟨0.01, 0.01, 0.2, 1⟩) keep
//! only genuinely hot pages in DRAM, reduce DRAM↔NVM traffic, and lower the
//! duplication between the two buffers (the *inclusivity ratio*, §3.3). An
//! [`adaptive::AnnealingTuner`] adjusts the policy online (§4).
//!
//! ## Quick start
//!
//! ```
//! use spitfire_core::{AccessIntent, BufferManager, BufferManagerConfig, MigrationPolicy};
//! use spitfire_device::TimeScale;
//!
//! let config = BufferManagerConfig::builder()
//!     .page_size(4096)
//!     .dram_capacity(16 * 4096)
//!     .nvm_capacity(64 * 4096)
//!     .policy(MigrationPolicy::lazy())
//!     .time_scale(TimeScale::ZERO) // no emulated delays in doc tests
//!     .build()
//!     .unwrap();
//! let bm = BufferManager::new(config).unwrap();
//!
//! let pid = bm.allocate_page().unwrap();
//! {
//!     let guard = bm.fetch(pid, AccessIntent::Write).unwrap();
//!     guard.write(0, b"hello, tiered storage").unwrap();
//! }
//! let guard = bm.fetch(pid, AccessIntent::Read).unwrap();
//! let mut buf = [0u8; 21];
//! guard.read(0, &mut buf).unwrap();
//! assert_eq!(&buf, b"hello, tiered storage");
//! ```
//!
//! ## Module map
//!
//! * [`manager`] / [`BufferManager`] — fetch, migration, eviction (§5).
//! * [`policy`] — the ⟨D_r, D_w, N_r, N_w⟩ taxonomy (§3) and presets
//!   (Table 3).
//! * [`adaptive`] — simulated-annealing policy tuning (§4).
//! * `fgpage` / `fgops` — cache-line-grained loading and mini pages
//!   (§2.1, Figures 2/11/12).
//! * [`metrics`] — tier hits, migration paths, inclusivity ratio (Table 2).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod adaptive;
pub mod advisor;
mod config;
mod descriptor;
mod error;
mod fgops;
mod fgpage;
mod guard;
mod io;
pub mod manager;
pub mod metrics;
pub mod policy;
mod pool;
mod types;

pub use config::{BufferManagerConfig, BufferManagerConfigBuilder, ConfigError, Hierarchy};
pub use error::BufferError;
pub use guard::PageGuard;
pub use manager::BufferManager;
pub use metrics::MetricsSnapshot;
pub use policy::{MigrationPolicy, NvmAdmission, PolicyCell};
pub use types::{AccessIntent, MigrationPath, PageId, Tier};

/// Result alias for buffer manager operations.
pub type Result<T> = std::result::Result<T, BufferError>;
