//! Error type for buffer manager operations.

use crate::config::ConfigError;
use crate::types::{PageId, Tier};

/// Errors surfaced by the buffer manager.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BufferError {
    /// A device operation failed.
    Device(spitfire_device::DeviceError),
    /// The configuration was invalid.
    Config(ConfigError),
    /// Every frame in `tier` is pinned or in transition; the request could
    /// not obtain a frame after an exhaustive search. Usually means the
    /// buffer is far too small for the number of concurrently pinned pages.
    NoFrames {
        /// The tier whose pool is exhausted.
        tier: Tier,
    },
    /// The page was never allocated (or its backing data is gone).
    UnknownPage(PageId),
    /// A device operation failed fatally (or kept failing past the retry
    /// budget). `during` names the buffer-manager path that was executing
    /// so chaos reports can attribute the failure.
    FatalIo {
        /// Label of the operation in flight (e.g. `"ssd read"`).
        during: &'static str,
        /// The device error that ended the retry loop.
        source: spitfire_device::DeviceError,
    },
}

impl BufferError {
    /// Whether retrying the failed operation can plausibly succeed —
    /// `true` only for transient device faults that have not yet been
    /// escalated past the retry budget. [`BufferError::NoFrames`] is *not*
    /// retryable from the buffer manager's perspective: the internal
    /// allocation loop has already retried exhaustively, so the caller
    /// must release pins (or grow the pool) first. Matches the shape of
    /// [`spitfire_device::DeviceError::is_retryable`] so every layer
    /// answers the question the same way.
    pub fn is_retryable(&self) -> bool {
        match self {
            BufferError::Device(e) => e.is_retryable(),
            _ => false,
        }
    }
}

impl std::fmt::Display for BufferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BufferError::Device(e) => write!(f, "device error: {e}"),
            BufferError::Config(e) => write!(f, "configuration error: {e}"),
            BufferError::NoFrames { tier } => {
                write!(f, "no evictable frames in the {} buffer", tier.label())
            }
            BufferError::UnknownPage(pid) => write!(f, "page {pid} was never allocated"),
            BufferError::FatalIo { during, source } => {
                write!(f, "fatal I/O during {during}: {source}")
            }
        }
    }
}

impl std::error::Error for BufferError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BufferError::Device(e) => Some(e),
            BufferError::Config(e) => Some(e),
            BufferError::FatalIo { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<spitfire_device::DeviceError> for BufferError {
    fn from(e: spitfire_device::DeviceError) -> Self {
        BufferError::Device(e)
    }
}

impl From<ConfigError> for BufferError {
    fn from(e: ConfigError) -> Self {
        BufferError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = BufferError::NoFrames { tier: Tier::Dram };
        assert_eq!(e.to_string(), "no evictable frames in the dram buffer");
        assert!(e.source().is_none());

        let e: BufferError = spitfire_device::DeviceError::PageNotFound(3).into();
        assert!(e.to_string().contains("page 3"));
        assert!(e.source().is_some());

        let e: BufferError = ConfigError::NoBufferCapacity.into();
        assert!(matches!(e, BufferError::Config(_)));
        assert_eq!(
            BufferError::UnknownPage(PageId(9)).to_string(),
            "page P9 was never allocated"
        );

        let e = BufferError::FatalIo {
            during: "ssd read",
            source: spitfire_device::DeviceError::InjectedFatal { op: "read" },
        };
        assert_eq!(
            e.to_string(),
            "fatal I/O during ssd read: injected fatal I/O error during read"
        );
        assert!(e.source().is_some());
    }
}
