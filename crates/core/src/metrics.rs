//! Buffer manager metrics: tier hits, migration-path counters, and the
//! inclusivity ratio (paper §3.3, Table 2).

use spitfire_sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};
use spitfire_sync::StripedCounter;

use crate::types::MigrationPath;

/// Thread-safe counters maintained by the buffer manager.
///
/// The counters bumped on every lock-free buffer hit (`dram_hits`,
/// `nvm_hits`, `fetch_fast`, plus the fallback/restart pair the slow path
/// touches) are [`StripedCounter`]s: a single shared `AtomicU64` incremented
/// by every fetch serializes the whole hit path on one cache line once
/// thread counts climb. Everything on colder paths stays a plain atomic.
#[derive(Debug, Default)]
pub struct BufferMetrics {
    dram_hits: StripedCounter,
    nvm_hits: StripedCounter,
    ssd_fetches: AtomicU64,
    migrations: [AtomicU64; MigrationPath::ALL.len()],
    evictions_dram: AtomicU64,
    evictions_nvm: AtomicU64,
    /// DRAM evictions of clean pages that were simply discarded (§3.3).
    discards: AtomicU64,
    /// Device operations retried after a transient I/O error.
    io_retries: AtomicU64,
    /// Device operations that failed fatally (injected fatal fault or
    /// retry budget exhausted).
    io_fatal: AtomicU64,
    /// Fetches served lock-free by the optimistic pin fast path.
    fetch_fast: StripedCounter,
    /// Fetches that fell back to the descriptor-mutex slow path (miss,
    /// closed pin word, promotion draw, or optimistic restart).
    fetch_fallbacks: StripedCounter,
    /// Optimistic pin attempts that observed a closed or concurrently
    /// transitioning pin word and restarted into the slow path.
    pin_restarts: StripedCounter,
    /// Fetch misses that found no free frame and ran eviction inline
    /// because maintenance workers had not kept up with the watermark.
    backpressure_fallbacks: AtomicU64,
    /// Maintenance cycles executed (worker wake-ups and manual ticks).
    maint_cycles: AtomicU64,
    /// Frames freed by maintenance pre-eviction (both tiers).
    maint_evictions: AtomicU64,
    /// Dirty pages written back by maintenance in batches.
    maint_writebacks: AtomicU64,
    /// Shadow-copy migrations aborted at commit because a concurrent write
    /// (or an undrained reader) invalidated the copy; the source copy
    /// stayed authoritative and the operation was retried or degraded.
    migrations_aborted: AtomicU64,
    /// Shadow aborts broken down by migration path, indexed by
    /// [`ShadowPath`] discriminant. Sums to `migrations_aborted`.
    shadow_aborts: [AtomicU64; ShadowPath::ALL.len()],
    /// Shadow commits by path: the success-side denominator for the
    /// per-path abort-rate gauges.
    shadow_commits: [AtomicU64; ShadowPath::ALL.len()],
}

/// Which shadow-copy migration path an abort or commit happened on.
/// Per-path rates matter because the paths fail for different reasons:
/// promotions race foreground writes, evictions race late readers, and
/// flushes race re-dirtying.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShadowPath {
    /// Upward migration (SSD/NVM → DRAM, or SSD → NVM admission).
    Promote,
    /// Downward eviction (DRAM → NVM/SSD, NVM → SSD).
    Evict,
    /// Dirty write-back that leaves the page resident (checkpoint or
    /// maintenance flush).
    Flush,
}

impl ShadowPath {
    /// Every path, in discriminant order (indexes the per-path counters).
    pub const ALL: [ShadowPath; 3] = [ShadowPath::Promote, ShadowPath::Evict, ShadowPath::Flush];

    /// Stable lowercase name (used in gauge names and reports).
    pub fn name(self) -> &'static str {
        match self {
            ShadowPath::Promote => "promote",
            ShadowPath::Evict => "evict",
            ShadowPath::Flush => "flush",
        }
    }
}

fn path_index(path: MigrationPath) -> usize {
    MigrationPath::ALL
        .iter()
        .position(|p| *p == path)
        .expect("MigrationPath::ALL contains every variant")
}

/// Bump a monotone statistics counter.
// relaxed: every plain-atomic counter in this file is a monotone
// statistic read only by `snapshot`/probe methods; counters publish no
// other memory, so no ordering is needed (striped counters make the
// identical argument in `spitfire_sync::padded`).
fn bump_n(c: &AtomicU64, n: u64) {
    c.fetch_add(n, Ordering::Relaxed);
}

/// Read a statistics counter (point-in-time, no cross-counter consistency).
// relaxed: see `bump_n`.
fn get(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed)
}

/// Zero a statistics counter; racing bumps may survive by design.
// relaxed: see `bump_n`.
fn zero(c: &AtomicU64) {
    c.store(0, Ordering::Relaxed);
}

impl BufferMetrics {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a request served from the DRAM buffer.
    pub fn record_dram_hit(&self) {
        self.dram_hits.incr();
    }

    /// Record a request served from the NVM buffer (directly, without
    /// promotion).
    pub fn record_nvm_hit(&self) {
        self.nvm_hits.incr();
    }

    /// Record a request that had to go to SSD.
    pub fn record_ssd_fetch(&self) {
        bump_n(&self.ssd_fetches, 1);
    }

    /// Record a page migration along `path`.
    pub fn record_migration(&self, path: MigrationPath) {
        bump_n(&self.migrations[path_index(path)], 1);
    }

    /// Record an eviction from the DRAM buffer.
    pub fn record_dram_eviction(&self) {
        bump_n(&self.evictions_dram, 1);
    }

    /// Record an eviction from the NVM buffer.
    pub fn record_nvm_eviction(&self) {
        bump_n(&self.evictions_nvm, 1);
    }

    /// Record a clean DRAM page discarded on eviction.
    pub fn record_discard(&self) {
        bump_n(&self.discards, 1);
    }

    /// Record one retry of a device operation after a transient error.
    pub fn record_io_retry(&self) {
        bump_n(&self.io_retries, 1);
    }

    /// Record a device operation that failed fatally.
    pub fn record_io_fatal(&self) {
        bump_n(&self.io_fatal, 1);
    }

    /// Record a fetch served lock-free by the optimistic pin fast path.
    pub fn record_fetch_fast(&self) {
        self.fetch_fast.incr();
    }

    /// Record a fetch that took the descriptor-mutex slow path.
    pub fn record_fetch_fallback(&self) {
        self.fetch_fallbacks.incr();
    }

    /// Record an optimistic pin attempt that had to restart.
    pub fn record_pin_restart(&self) {
        self.pin_restarts.incr();
    }

    /// Record a fetch miss that fell back to inline eviction because the
    /// free list was empty (maintenance behind the low watermark).
    pub fn record_backpressure_fallback(&self) {
        bump_n(&self.backpressure_fallbacks, 1);
    }

    /// Record one maintenance cycle (worker wake-up or manual tick).
    pub fn record_maint_cycle(&self) {
        bump_n(&self.maint_cycles, 1);
    }

    /// Record `n` frames freed by maintenance pre-eviction.
    pub fn record_maint_evictions(&self, n: u64) {
        bump_n(&self.maint_evictions, n);
    }

    /// Record `n` dirty pages written back by a maintenance batch.
    pub fn record_maint_writebacks(&self, n: u64) {
        bump_n(&self.maint_writebacks, n);
    }

    /// Record a shadow-copy migration aborted at commit on `path` (also
    /// bumps the path-agnostic `migrations_aborted` total).
    pub fn record_shadow_abort(&self, path: ShadowPath) {
        bump_n(&self.migrations_aborted, 1);
        bump_n(&self.shadow_aborts[path as usize], 1);
    }

    /// Record a shadow-copy migration that committed on `path`.
    pub fn record_shadow_commit(&self, path: ShadowPath) {
        bump_n(&self.shadow_commits[path as usize], 1);
    }

    /// Abort count for one shadow path (single relaxed load; the obs
    /// gauges read this on every scrape).
    pub fn shadow_aborts(&self, path: ShadowPath) -> u64 {
        get(&self.shadow_aborts[path as usize])
    }

    /// Commit count for one shadow path.
    pub fn shadow_commits(&self, path: ShadowPath) -> u64 {
        get(&self.shadow_commits[path as usize])
    }

    /// Current backpressure-fallback count (single relaxed load; the
    /// admission-control pressure probe reads this on every decision).
    pub fn backpressure_fallbacks(&self) -> u64 {
        get(&self.backpressure_fallbacks)
    }

    /// Point-in-time copy of all counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            dram_hits: self.dram_hits.sum(),
            nvm_hits: self.nvm_hits.sum(),
            ssd_fetches: get(&self.ssd_fetches),
            migrations: MigrationPath::ALL
                .iter()
                .map(|p| get(&self.migrations[path_index(*p)]))
                .collect::<Vec<_>>()
                .try_into()
                .expect("sized by MigrationPath::ALL"),
            evictions_dram: get(&self.evictions_dram),
            evictions_nvm: get(&self.evictions_nvm),
            discards: get(&self.discards),
            io_retries: get(&self.io_retries),
            io_fatal: get(&self.io_fatal),
            fetch_fast: self.fetch_fast.sum(),
            fetch_fallbacks: self.fetch_fallbacks.sum(),
            pin_restarts: self.pin_restarts.sum(),
            backpressure_fallbacks: get(&self.backpressure_fallbacks),
            maint_cycles: get(&self.maint_cycles),
            maint_evictions: get(&self.maint_evictions),
            maint_writebacks: get(&self.maint_writebacks),
            migrations_aborted: get(&self.migrations_aborted),
            shadow_aborts: ShadowPath::ALL.map(|p| get(&self.shadow_aborts[p as usize])),
            shadow_commits: ShadowPath::ALL.map(|p| get(&self.shadow_commits[p as usize])),
        }
    }

    /// Reset all counters (between experiment phases).
    pub fn reset(&self) {
        self.dram_hits.reset();
        self.nvm_hits.reset();
        zero(&self.ssd_fetches);
        for m in &self.migrations {
            zero(m);
        }
        zero(&self.evictions_dram);
        zero(&self.evictions_nvm);
        zero(&self.discards);
        zero(&self.io_retries);
        zero(&self.io_fatal);
        self.fetch_fast.reset();
        self.fetch_fallbacks.reset();
        self.pin_restarts.reset();
        zero(&self.backpressure_fallbacks);
        zero(&self.maint_cycles);
        zero(&self.maint_evictions);
        zero(&self.maint_writebacks);
        zero(&self.migrations_aborted);
        for c in self.shadow_aborts.iter().chain(self.shadow_commits.iter()) {
            zero(c);
        }
    }
}

/// Immutable copy of [`BufferMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Requests served from DRAM.
    pub dram_hits: u64,
    /// Requests served directly from NVM.
    pub nvm_hits: u64,
    /// Requests that required an SSD read.
    pub ssd_fetches: u64,
    /// Migration counts indexed like [`MigrationPath::ALL`].
    pub migrations: [u64; 6],
    /// Evictions from the DRAM buffer.
    pub evictions_dram: u64,
    /// Evictions from the NVM buffer.
    pub evictions_nvm: u64,
    /// Clean DRAM pages discarded on eviction.
    pub discards: u64,
    /// Device operations retried after a transient I/O error.
    pub io_retries: u64,
    /// Device operations that failed fatally.
    pub io_fatal: u64,
    /// Fetches served lock-free by the optimistic pin fast path.
    pub fetch_fast: u64,
    /// Fetches that took the descriptor-mutex slow path.
    pub fetch_fallbacks: u64,
    /// Optimistic pin attempts that restarted into the slow path.
    pub pin_restarts: u64,
    /// Fetch misses that ran eviction inline because the free list was
    /// empty (maintenance behind the low watermark).
    pub backpressure_fallbacks: u64,
    /// Maintenance cycles executed.
    pub maint_cycles: u64,
    /// Frames freed by maintenance pre-eviction.
    pub maint_evictions: u64,
    /// Dirty pages written back by maintenance batches.
    pub maint_writebacks: u64,
    /// Shadow-copy migrations aborted at commit (copy raced a write or
    /// readers failed to drain within the spin budget).
    pub migrations_aborted: u64,
    /// Shadow aborts by path, indexed like [`ShadowPath::ALL`]
    /// (promote, evict, flush). Sums to `migrations_aborted`.
    pub shadow_aborts: [u64; 3],
    /// Shadow commits by path, indexed like [`ShadowPath::ALL`].
    pub shadow_commits: [u64; 3],
}

impl MetricsSnapshot {
    /// Count for one migration path.
    pub fn path(&self, path: MigrationPath) -> u64 {
        self.migrations[path_index(path)]
    }

    /// Shadow abort rate for one path: aborts / (aborts + commits), or 0
    /// when the path never ran.
    pub fn shadow_abort_rate(&self, path: ShadowPath) -> f64 {
        let a = self.shadow_aborts[path as usize];
        let total = a + self.shadow_commits[path as usize];
        if total == 0 {
            return 0.0;
        }
        a as f64 / total as f64
    }

    /// Total buffer requests observed.
    pub fn total_requests(&self) -> u64 {
        self.dram_hits + self.nvm_hits + self.ssd_fetches
    }

    /// Fraction of requests served without touching SSD.
    pub fn buffer_hit_ratio(&self) -> f64 {
        let total = self.total_requests();
        if total == 0 {
            return 0.0;
        }
        (self.dram_hits + self.nvm_hits) as f64 / total as f64
    }

    /// Difference between two snapshots (`self` taken after `earlier`).
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut migrations = [0u64; 6];
        for (i, m) in migrations.iter_mut().enumerate() {
            *m = self.migrations[i] - earlier.migrations[i];
        }
        MetricsSnapshot {
            dram_hits: self.dram_hits - earlier.dram_hits,
            nvm_hits: self.nvm_hits - earlier.nvm_hits,
            ssd_fetches: self.ssd_fetches - earlier.ssd_fetches,
            migrations,
            evictions_dram: self.evictions_dram - earlier.evictions_dram,
            evictions_nvm: self.evictions_nvm - earlier.evictions_nvm,
            discards: self.discards - earlier.discards,
            io_retries: self.io_retries - earlier.io_retries,
            io_fatal: self.io_fatal - earlier.io_fatal,
            fetch_fast: self.fetch_fast - earlier.fetch_fast,
            fetch_fallbacks: self.fetch_fallbacks - earlier.fetch_fallbacks,
            pin_restarts: self.pin_restarts - earlier.pin_restarts,
            backpressure_fallbacks: self.backpressure_fallbacks - earlier.backpressure_fallbacks,
            maint_cycles: self.maint_cycles - earlier.maint_cycles,
            maint_evictions: self.maint_evictions - earlier.maint_evictions,
            maint_writebacks: self.maint_writebacks - earlier.maint_writebacks,
            migrations_aborted: self.migrations_aborted - earlier.migrations_aborted,
            shadow_aborts: std::array::from_fn(|i| {
                self.shadow_aborts[i] - earlier.shadow_aborts[i]
            }),
            shadow_commits: std::array::from_fn(|i| {
                self.shadow_commits[i] - earlier.shadow_commits[i]
            }),
        }
    }
}

/// The inclusivity ratio of the DRAM and NVM buffers (paper §3.3):
/// `|DRAM ∩ NVM| / |DRAM ∪ NVM|`. Lower non-zero values mean less wasted
/// duplicate capacity (Table 2).
pub fn inclusivity_ratio(in_both: usize, in_either: usize) -> f64 {
    if in_either == 0 {
        return 0.0;
    }
    in_both as f64 / in_either as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_snapshot() {
        let m = BufferMetrics::new();
        m.record_dram_hit();
        m.record_dram_hit();
        m.record_nvm_hit();
        m.record_ssd_fetch();
        m.record_migration(MigrationPath::SsdToDram);
        m.record_migration(MigrationPath::SsdToDram);
        m.record_migration(MigrationPath::NvmToDram);
        m.record_dram_eviction();
        m.record_discard();
        let s = m.snapshot();
        assert_eq!(s.dram_hits, 2);
        assert_eq!(s.nvm_hits, 1);
        assert_eq!(s.ssd_fetches, 1);
        assert_eq!(s.path(MigrationPath::SsdToDram), 2);
        assert_eq!(s.path(MigrationPath::NvmToDram), 1);
        assert_eq!(s.path(MigrationPath::DramToSsd), 0);
        assert_eq!(s.total_requests(), 4);
        assert!((s.buffer_hit_ratio() - 0.75).abs() < 1e-12);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn hit_ratio_of_empty_is_zero() {
        assert_eq!(MetricsSnapshot::default().buffer_hit_ratio(), 0.0);
    }

    #[test]
    fn delta_subtracts() {
        let m = BufferMetrics::new();
        m.record_dram_hit();
        let a = m.snapshot();
        m.record_dram_hit();
        m.record_migration(MigrationPath::DramToNvm);
        let b = m.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.dram_hits, 1);
        assert_eq!(d.path(MigrationPath::DramToNvm), 1);
    }

    #[test]
    fn shadow_paths_split_the_abort_total() {
        let m = BufferMetrics::new();
        m.record_shadow_abort(ShadowPath::Promote);
        m.record_shadow_abort(ShadowPath::Evict);
        m.record_shadow_abort(ShadowPath::Evict);
        m.record_shadow_commit(ShadowPath::Evict);
        m.record_shadow_commit(ShadowPath::Flush);
        let s = m.snapshot();
        assert_eq!(s.migrations_aborted, 3);
        assert_eq!(s.shadow_aborts, [1, 2, 0]);
        assert_eq!(s.shadow_commits, [0, 1, 1]);
        assert!((s.shadow_abort_rate(ShadowPath::Evict) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.shadow_abort_rate(ShadowPath::Flush), 0.0);
        // A path that never ran reports rate 0, not NaN.
        let empty = MetricsSnapshot::default();
        assert_eq!(empty.shadow_abort_rate(ShadowPath::Promote), 0.0);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn inclusivity_matches_definition() {
        assert_eq!(inclusivity_ratio(0, 0), 0.0);
        assert_eq!(inclusivity_ratio(0, 10), 0.0);
        assert!((inclusivity_ratio(5, 20) - 0.25).abs() < 1e-12);
        assert_eq!(inclusivity_ratio(10, 10), 1.0);
    }
}
