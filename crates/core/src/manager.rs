//! The Spitfire buffer manager (paper §5).
//!
//! One [`BufferManager`] owns up to two buffer pools (DRAM and NVM) over an
//! SSD, a unified mapping table of shared page descriptors (Figure 4), the
//! CLOCK replacement state per pool, and the probabilistic data migration
//! policy (§3). See the crate docs for the full data-flow picture.
//!
//! # Concurrency protocol
//!
//! All copy-state transitions take the descriptor mutex, which is never
//! held across device I/O (except for fine-grained granule loads, whose
//! I/O is sub-microsecond NVM/DRAM traffic). Migrations mark the involved
//! copies `Busy`/`Loading` first, perform I/O, then commit the transition —
//! the non-blocking equivalent of the paper's per-tier migration latches.
//! Two invariants make this deadlock-free:
//!
//! * a thread never holds two descriptor mutexes at once (evictions use
//!   `try_lock` and skip on failure);
//! * migrations only start when the source copy has no outstanding pins,
//!   so no wait ever depends on a guard held by another operation.
//!
//! Layered *above* the mutex protocol is the optimistic hit fast path
//! (paper §5.2, DESIGN.md "Lock-free hit path"): a fetch of a stably
//! resident page pins it through the descriptor's
//! [`spitfire_sync::PinWord`] with a single CAS and never touches the
//! mutex. Every slot transition closes the word first (under the mutex)
//! and only proceeds once the optimistic pin count is zero, so the two
//! layers compose: the word proves residency to readers, the mutex
//! serializes writers, and a reader that loses the race simply restarts
//! into the mutex path.
//!
//! With [`BufferManagerConfig::shadow_migrations`] (the default), DRAM↔NVM
//! moves and eviction/checkpoint write-backs of full-frame copies use
//! *shadow copies* instead of closing the pin word across the transfer:
//! the bytes are copied to the destination while the source stays open and
//! `Resident`, and the transition commits through
//! [`spitfire_sync::PinWord::shadow_commit`] only if no write overlapped
//! the copy window and every pin drained. Readers never stall behind a
//! migration; a raced copy is simply discarded and the source stays
//! authoritative. See DESIGN.md "Shadow-copy migrations".

use spitfire_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::cell::{Cell, RefCell};
use std::sync::Arc;

use spitfire_device::{
    AccessPattern, DeviceError, DeviceStats, FaultInjector, NvmDevice, SsdDevice,
};
use spitfire_obs::{self as obs, Op};
use spitfire_sync::lock::RwLock;
use spitfire_sync::{AdmissionQueue, ConcurrentMap, PinAttempt, ShadowOutcome, ShadowToken};

use crate::background::{CycleStats, MaintSignal, Maintenance};
use crate::config::{BufferManagerConfig, Hierarchy};
use crate::descriptor::{CopyState, FrameRef, PageState, SharedPageDesc};
use crate::error::BufferError;
use crate::fgpage::MiniSlabs;
use crate::guard::{GuardKind, PageGuard, ReadGuard, WriteGuard};
use crate::io::{retry_device_io, retry_device_io_n, MAINT_RETRY_LIMIT};
use crate::metrics::{inclusivity_ratio, BufferMetrics, MetricsSnapshot, ShadowPath};
use crate::policy::{MigrationPolicy, PolicyCell};
use crate::pool::Pool;
use crate::types::{AccessIntent, FrameId, MigrationPath, PageId, Tier};
use crate::Result;

/// What to do with a DRAM copy selected for eviction (decided under the
/// descriptor lock, executed without it).
enum EvictPlan {
    /// Clean copy: drop it (§3.3 — unmodified pages are simply discarded).
    Discard,
    /// Dirty copy with an existing NVM copy: merge the newer bytes into the
    /// NVM frame.
    MergeIntoNvm(FrameId),
    /// Dirty fine-grained copy: write only the dirty granules back to the
    /// backing NVM frame.
    WriteBackGranules(FrameId),
    /// Dirty copy admitted to NVM (coin flip `N_w` or admission queue).
    AdmitToNvm,
    /// Dirty copy bypassing NVM, written straight to SSD (§3.4).
    WriteToSsd,
}

/// Global id source distinguishing managers in per-thread caches.
static NEXT_MGR_ID: AtomicU64 = AtomicU64::new(1);

/// Direct-mapped slots in the per-thread descriptor cache. Hot working
/// sets are far smaller than this; collisions just fall back to the
/// mapping table.
const DESC_CACHE_SLOTS: usize = 64;

/// Spin budget a shadow-copy commit spends draining optimistic pins
/// (see [`spitfire_sync::PinWord::shadow_commit`]). Live readers hold a
/// pin for a handful of loads, so a short budget drains them; a pin that
/// outlasts it belongs to a descheduled thread or to a writer blocked on
/// *our* descriptor mutex — spinning longer would deadlock on the latter,
/// so the commit aborts and the migration retries later.
const SHADOW_COMMIT_SPIN: u32 = 128;

/// An NVM victim staged for batched SSD write-back: descriptor, source
/// frame, shadow token (present when the copy was claimed non-blockingly),
/// and the staged page image.
type StagedWriteback = (Arc<SharedPageDesc>, FrameId, Option<ShadowToken>, Vec<u8>);

/// One per-thread descriptor cache entry: valid for a single manager
/// generation (`mgr`, `epoch`).
struct CachedDesc {
    mgr: u64,
    epoch: u64,
    pid: u64,
    desc: Arc<SharedPageDesc>,
}

thread_local! {
    /// pid → descriptor cache, shared across managers on this thread
    /// (entries are tagged with the owning manager and its crash epoch).
    static DESC_CACHE: RefCell<Vec<Option<CachedDesc>>> =
        RefCell::new((0..DESC_CACHE_SLOTS).map(|_| None).collect());
}

/// How the fast path resolved a fetch.
enum FastOutcome<'a> {
    /// Served lock-free: the guard holds an optimistic pin.
    Hit(PageGuard<'a>),
    /// Fall back to the mutex slow path with the resolved descriptor.
    /// `promote` carries an already-drawn D_r/D_w promotion coin
    /// (`Some(_)`) so the slow path never draws it twice.
    Slow(Arc<SharedPageDesc>, Option<bool>),
    /// No descriptor exists yet (first access, or an invalid pid): the
    /// slow path bounds-checks and creates it.
    NoDesc,
}

/// Multi-threaded three-tier buffer manager.
pub struct BufferManager {
    config: BufferManagerConfig,
    pub(crate) mapping: ConcurrentMap<u64, Arc<SharedPageDesc>>,
    /// Tier-1 pool: DRAM, or the memory-mode composite device.
    tier1: Option<Pool>,
    /// Tier-2 pool: app-direct NVM.
    nvm: Option<Pool>,
    ssd: SsdDevice,
    policy: PolicyCell,
    admission: Option<AdmissionQueue>,
    pub(crate) metrics: Arc<BufferMetrics>,
    next_pid: AtomicU64,
    /// This manager's id in per-thread caches and RNG streams.
    mgr_id: u64,
    /// Bumped when the mapping table is discarded (`simulate_crash`) so
    /// per-thread descriptor caches drop entries for dead descriptors.
    cache_epoch: AtomicU64,
    /// Ordinal handed to each thread's policy RNG on its first draw from
    /// this manager (seeds stay deterministic per (seed, ordinal)).
    rng_threads: AtomicU64,
    pub(crate) mini: Option<MiniSlabs>,
    /// Wake-up signal shared with an attached [`Maintenance`] service;
    /// `None` until one is created.
    maint: RwLock<Option<Arc<MaintSignal>>>,
    /// True while maintenance workers are running — the allocation path
    /// checks this flag (relaxed) before paying for watermark math.
    maint_active: AtomicBool,
    /// Checkpoint dirty-epoch tracking: the current epoch number, bumped by
    /// [`BufferManager::drain_dirty_epoch`].
    dirty_epoch: AtomicU64,
    /// Pages whose content changed since the last epoch drain. The
    /// per-descriptor `ckpt_epoch` hint keeps repeat writers off this
    /// mutex; an incremental checkpoint drains it to learn which page
    /// images to copy.
    dirty_since: parking_lot::Mutex<std::collections::BTreeSet<u64>>,
}

impl BufferManager {
    /// Build a buffer manager from `config`.
    pub fn new(config: BufferManagerConfig) -> Result<Self> {
        config.validate()?;
        let scale = config.time_scale;
        let page = config.page_size;
        let metrics = Arc::new(BufferMetrics::new());
        let (tier1, nvm) = if config.memory_mode {
            (
                Some(Pool::memory_mode(
                    config.nvm_capacity,
                    config.dram_capacity,
                    page,
                    scale,
                    config.dram_policy,
                    Arc::clone(&metrics),
                )),
                None,
            )
        } else {
            let t1 = (config.dram_capacity > 0).then(|| {
                Pool::dram(
                    config.dram_capacity,
                    page,
                    scale,
                    config.dram_policy,
                    Arc::clone(&metrics),
                )
            });
            let t2 = (config.nvm_capacity > 0).then(|| {
                Pool::nvm(
                    config.nvm_capacity,
                    page,
                    scale,
                    config.persistence,
                    config.nvm_policy,
                    Arc::clone(&metrics),
                )
            });
            (t1, t2)
        };
        let admission = nvm.as_ref().map(|pool| {
            let cap = config
                .admission_queue_capacity
                .unwrap_or(pool.n_frames() / 2)
                .max(1);
            AdmissionQueue::new(cap)
        });
        let mini = config
            .mini_pages
            .then(|| MiniSlabs::new(page, config.fine_grained.expect("validated")));
        let ssd = SsdDevice::with_backend(page, scale, config.persistence, &config.ssd_backend)
            .map_err(BufferError::Device)?;
        Ok(BufferManager {
            mapping: ConcurrentMap::new(),
            tier1,
            nvm,
            ssd,
            policy: PolicyCell::new(config.policy),
            admission,
            metrics,
            next_pid: AtomicU64::new(0),
            // relaxed: id allocation only needs uniqueness, which the RMW
            // gives regardless of ordering.
            mgr_id: NEXT_MGR_ID.fetch_add(1, Ordering::Relaxed),
            cache_epoch: AtomicU64::new(0),
            rng_threads: AtomicU64::new(0),
            mini,
            maint: RwLock::new(None),
            maint_active: AtomicBool::new(false),
            dirty_epoch: AtomicU64::new(0),
            dirty_since: parking_lot::Mutex::new(std::collections::BTreeSet::new()),
            config,
        })
    }

    /// The configuration this manager was built with.
    pub fn config(&self) -> &BufferManagerConfig {
        &self.config
    }

    /// The storage hierarchy in effect.
    pub fn hierarchy(&self) -> Hierarchy {
        self.config.hierarchy()
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.config.page_size
    }

    /// Number of pages allocated so far.
    pub fn page_count(&self) -> u64 {
        self.next_pid.load(Ordering::Acquire)
    }

    /// The active migration policy.
    pub fn policy(&self) -> MigrationPolicy {
        self.policy.load()
    }

    /// Administrative handle grouping every runtime mutator — see
    /// [`Admin`].
    pub fn admin(&self) -> Admin<'_> {
        Admin { bm: self }
    }

    /// Buffer metrics counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Reset buffer metrics and device counters (between experiment
    /// phases).
    pub fn reset_metrics(&self) {
        self.metrics.reset();
        if let Some(p) = &self.tier1 {
            p.device_stats().reset();
        }
        if let Some(p) = &self.nvm {
            p.device_stats().reset();
        }
        self.ssd.stats().reset();
    }

    /// Device counters for `tier`, if the tier exists in this hierarchy.
    pub fn device_stats(&self, tier: Tier) -> Option<Arc<DeviceStats>> {
        match tier {
            Tier::Dram => self.tier1.as_ref().map(Pool::device_stats),
            Tier::Nvm => self.nvm.as_ref().map(Pool::device_stats),
            Tier::Ssd => Some(self.ssd.stats()),
        }
    }

    /// Number of page frames in the DRAM (tier-1) pool.
    pub fn dram_frames(&self) -> usize {
        self.tier1.as_ref().map_or(0, Pool::n_frames)
    }

    /// Number of page frames in the NVM pool.
    pub fn nvm_frames(&self) -> usize {
        self.nvm.as_ref().map_or(0, Pool::n_frames)
    }

    /// Direct handle to the NVM device (recovery tests, WAL sharing).
    pub fn nvm_device(&self) -> Option<&NvmDevice> {
        self.nvm.as_ref().and_then(Pool::nvm_device)
    }

    /// Memory-mode cache hit/miss counters, when running in memory mode.
    pub fn memory_mode_cache(&self) -> Option<(u64, u64)> {
        self.tier1
            .as_ref()
            .and_then(Pool::memory_mode_device)
            .map(|d| (d.cache_hits(), d.cache_misses()))
    }

    pub(crate) fn tier1_pool(&self) -> &Pool {
        self.tier1
            .as_ref()
            .expect("tier-1 pool exists for this guard")
    }

    pub(crate) fn nvm_pool(&self) -> &Pool {
        self.nvm.as_ref().expect("NVM pool exists for this guard")
    }

    /// Cheap uniform draw from a per-thread xorshift64* stream — no
    /// shared cache line on the hot path (the old shared splitmix64
    /// counter was a guaranteed cross-core bounce per draw).
    ///
    /// Each (manager, thread) pair gets an independent stream seeded from
    /// `config.seed` and the order in which threads first draw from this
    /// manager. A fresh manager re-issues ordinals from zero, so a
    /// single-threaded run (the chaos explorer) sees an identical draw
    /// sequence across managers built with the same seed — the
    /// determinism `identical_configs_yield_identical_verdicts` relies
    /// on.
    fn draw(&self) -> u32 {
        thread_local! {
            /// (owning manager id, xorshift state).
            static POLICY_RNG: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
        }
        POLICY_RNG.with(|c| {
            let (id, mut s) = c.get();
            if id != self.mgr_id {
                // relaxed: per-thread RNG seed ordinal; only uniqueness
                // matters, not ordering against other memory.
                let ord = self.rng_threads.fetch_add(1, Ordering::Relaxed);
                // `| 1` keeps the xorshift state non-zero forever.
                s = splitmix64(self.config.seed ^ splitmix64(ord)) | 1;
            }
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            c.set((self.mgr_id, s));
            (s.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) as u32
        })
    }

    /// Allocate a fresh zeroed page. The page initially resides on SSD
    /// (paper §1: "initially, a newly-allocated page resides on SSD").
    pub fn allocate_page(&self) -> Result<PageId> {
        let pid = PageId(self.next_pid.fetch_add(1, Ordering::AcqRel));
        let zeros = vec![0u8; self.config.page_size];
        retry_device_io(&self.metrics, "page allocation", || {
            self.ssd.write_page(pid.0, &zeros)
        })?;
        Ok(pid)
    }

    /// Force an fsync barrier on the SSD: everything written so far
    /// survives [`BufferManager::simulate_crash`].
    pub fn sync_ssd(&self) -> Result<()> {
        retry_device_io(&self.metrics, "ssd sync", || self.ssd.sync())
    }

    /// Read `pid`'s SSD image into `buf`, retrying transient faults. A page
    /// whose backing vanished in a crash (allocated but never synced) reads
    /// as zeros — the durable content of a freshly allocated page.
    fn read_ssd_page(&self, pid: PageId, buf: &mut [u8]) -> Result<()> {
        match retry_device_io(&self.metrics, "ssd read", || self.ssd.read_page(pid.0, buf)) {
            Ok(()) => Ok(()),
            Err(BufferError::Device(DeviceError::PageNotFound(_))) => {
                buf.fill(0);
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    fn descriptor(&self, pid: PageId) -> Result<Arc<SharedPageDesc>> {
        // relaxed: suffices for this bounds check — a caller can only hold
        // a valid pid through some channel that happens-after the
        // `fetch_add` in `allocate_page` (a return value, a message, a
        // page read), and that edge makes the incremented counter visible
        // to a relaxed load too. Acquire bought nothing — there is no
        // release store this load needs to pair with for correctness —
        // and the optimistic fast path skips the check entirely:
        // presence in the mapping table proves the pid was validated.
        if pid.0 >= self.next_pid.load(Ordering::Relaxed) {
            return Err(BufferError::UnknownPage(pid));
        }
        Ok(self
            .mapping
            .get_or_insert_with(pid.0, || Arc::new(SharedPageDesc::new(pid))))
    }

    /// Fetch `pid` with the given intent, returning a pinned guard on
    /// whichever tier the migration policy placed the page (§5.1).
    ///
    /// A stably resident page is served by the lock-free fast path (a
    /// per-thread descriptor cache plus the descriptor's optimistic pin
    /// word); everything else — misses, promotions, contended
    /// transitions, fine-grained copies — falls back to the
    /// descriptor-mutex slow path.
    pub fn fetch(&self, pid: PageId, intent: AccessIntent) -> Result<PageGuard<'_>> {
        let obs_t = obs::op_start();
        match self.fetch_fast(pid, intent, obs_t) {
            FastOutcome::Hit(guard) => Ok(guard),
            FastOutcome::Slow(desc, promote) => self.fetch_slow(&desc, pid, intent, promote, obs_t),
            FastOutcome::NoDesc => {
                let desc = self.descriptor(pid)?;
                self.fetch_slow(&desc, pid, intent, None, obs_t)
            }
        }
    }

    /// Fetch `pid` for reading, returning a [`ReadGuard`] that statically
    /// has no write methods — passing read intent and then writing through
    /// the guard becomes a compile error instead of silently mis-charging
    /// the migration policy's read/write coins.
    pub fn fetch_read(&self, pid: PageId) -> Result<ReadGuard<'_>> {
        self.fetch(pid, AccessIntent::Read).map(ReadGuard::new)
    }

    /// Fetch `pid` for writing, returning a [`WriteGuard`] (read methods
    /// plus `write`/`write_u64`).
    pub fn fetch_write(&self, pid: PageId) -> Result<WriteGuard<'_>> {
        self.fetch(pid, AccessIntent::Write).map(WriteGuard::new)
    }

    /// Cache-miss descriptor resolution for [`Self::fetch_fast`]: consult
    /// the mapping table and install the result in the thread-local slot.
    /// The mapping probe takes a shard read lock, which is why this lives
    /// outside the `fastpath` lint region — a stably cached page never
    /// gets here.
    #[cold]
    fn fast_resolve_miss(&self, slot: &mut Option<CachedDesc>, pid: PageId, epoch: u64) -> bool {
        let Some(desc) = self.mapping.get(&pid.0) else {
            return false;
        };
        *slot = Some(CachedDesc {
            mgr: self.mgr_id,
            epoch,
            pid: pid.0,
            desc,
        });
        true
    }

    /// Mapping-table fallback for [`Self::unpin_fast`] when the cache slot
    /// was stolen by a colliding pid (or invalidated by a crash). After a
    /// crash the descriptor may be gone entirely — the pin died with it,
    /// and `PinWord::unpin` on a re-created descriptor is a harmless no-op
    /// at count zero. Takes a shard read lock, hence outside the
    /// `fastpath` lint region.
    #[cold]
    fn unpin_cold(&self, pid: PageId, in_dram_slot: bool) {
        if let Some(desc) = self.mapping.get(&pid.0) {
            desc.pin_word(in_dram_slot).unpin();
        }
    }

    // xtask: fastpath-begin -- lock-free hit path (fetch_fast/unpin_fast).
    // No lock types or acquisitions below; lock-taking fallbacks are the
    // #[cold] helpers above, outside this region.

    /// The lock-free hit path. An uncontended DRAM hit costs one
    /// thread-local array probe, one pin-word CAS, one CLOCK-bitmap bit
    /// set, and two relaxed counter bumps — no mutex, no shard lock, no
    /// `Arc` refcount traffic, no pid bounds check.
    fn fetch_fast(
        &self,
        pid: PageId,
        intent: AccessIntent,
        obs_t: Option<std::time::Instant>,
    ) -> FastOutcome<'_> {
        DESC_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            let slot = &mut cache[(pid.0 as usize) & (DESC_CACHE_SLOTS - 1)];
            // Acquire pairs with the release bump in `simulate_crash`: a
            // thread that sees the new epoch also sees the cleared
            // mapping table, so stale descriptors cannot be re-cached
            // under the new epoch.
            let epoch = self.cache_epoch.load(Ordering::Acquire);
            let desc: &Arc<SharedPageDesc> = match slot {
                Some(c) if c.mgr == self.mgr_id && c.epoch == epoch && c.pid == pid.0 => &c.desc,
                _ => {
                    if !self.fast_resolve_miss(slot, pid, epoch) {
                        return FastOutcome::NoDesc;
                    }
                    &slot.as_ref().expect("just resolved").desc
                }
            };
            // DRAM copy: one CAS pins it or we learn why not.
            if self.tier1.is_some() {
                match desc.dram_pin.try_pin() {
                    PinAttempt::Pinned(frame) => {
                        let f = FrameId(frame);
                        self.tier1_pool().touch(f);
                        self.metrics.record_dram_hit();
                        self.metrics.record_fetch_fast();
                        obs::record_op(Op::FetchDramHit, obs_t, pid.0, "dram");
                        return FastOutcome::Hit(PageGuard {
                            bm: self,
                            pid,
                            kind: GuardKind::FullDram(f),
                            in_dram_slot: true,
                            optimistic: true,
                        });
                    }
                    PinAttempt::Raced => {
                        // A transition closed the word between our load
                        // and CAS: restart into the mutex protocol.
                        self.metrics.record_pin_restart();
                        obs::record_op(Op::PinRestart, obs_t, pid.0, "dram");
                        return FastOutcome::Slow(Arc::clone(desc), None);
                    }
                    PinAttempt::Closed => {}
                }
            }
            // NVM copy: open implies Resident with no DRAM copy
            // shadowing it, so serving in place is consistent. The
            // promotion coin is drawn here (lazily — degenerate
            // probabilities skip the RNG); if it fires, the slow path
            // executes the promotion with the draw already made.
            if self.nvm.is_some() && desc.nvm_pin.is_open() {
                let promote = self.tier1.is_some()
                    && match intent {
                        AccessIntent::Read => self.policy.flip_dr_with(|| self.draw()),
                        AccessIntent::Write => self.policy.flip_dw_with(|| self.draw()),
                    };
                if promote {
                    return FastOutcome::Slow(Arc::clone(desc), Some(true));
                }
                match desc.nvm_pin.try_pin() {
                    PinAttempt::Pinned(frame) => {
                        let f = FrameId(frame);
                        self.nvm_pool().touch(f);
                        self.metrics.record_nvm_hit();
                        self.metrics.record_fetch_fast();
                        obs::record_op(Op::FetchNvmHit, obs_t, pid.0, "nvm");
                        return FastOutcome::Hit(PageGuard {
                            bm: self,
                            pid,
                            kind: GuardKind::FullNvm(f),
                            in_dram_slot: false,
                            optimistic: true,
                        });
                    }
                    PinAttempt::Raced | PinAttempt::Closed => {
                        // The coin was already drawn (tails): pass it
                        // down so the slow path does not re-draw.
                        self.metrics.record_pin_restart();
                        obs::record_op(Op::PinRestart, obs_t, pid.0, "nvm");
                        return FastOutcome::Slow(Arc::clone(desc), Some(false));
                    }
                }
            }
            FastOutcome::Slow(Arc::clone(desc), None)
        })
    }

    /// Drop an optimistic pin (guard drop). Mirrors `fetch_fast`: the
    /// descriptor comes from the per-thread cache when possible, and the
    /// unpin is a single CAS — no mutex, no condvar. Nothing ever blocks
    /// waiting for optimistic pins to drain (`Busy` states start at zero
    /// pins; evictors and promoters skip or serve in place instead), so
    /// no notification is needed.
    pub(crate) fn unpin_fast(&self, pid: PageId, in_dram_slot: bool) {
        let epoch = self.cache_epoch.load(Ordering::Acquire);
        let cached = DESC_CACHE.with(|cache| {
            let cache = cache.borrow();
            match &cache[(pid.0 as usize) & (DESC_CACHE_SLOTS - 1)] {
                Some(c) if c.mgr == self.mgr_id && c.epoch == epoch && c.pid == pid.0 => {
                    c.desc.pin_word(in_dram_slot).unpin();
                    true
                }
                _ => false,
            }
        });
        if !cached {
            self.unpin_cold(pid, in_dram_slot);
        }
    }

    // xtask: fastpath-end

    /// The descriptor-mutex fetch protocol (misses, migrations, waits).
    /// `promote` carries a promotion coin the fast path already drew for
    /// an NVM-resident page, consumed by the first NVM-resident arm.
    fn fetch_slow(
        &self,
        desc: &SharedPageDesc,
        pid: PageId,
        intent: AccessIntent,
        promote: Option<bool>,
        obs_t: Option<std::time::Instant>,
    ) -> Result<PageGuard<'_>> {
        self.metrics.record_fetch_fallback();
        let mut promote_hint = promote;
        let mut st = desc.state.lock();
        loop {
            // 1. Tier-1 (DRAM) copy.
            if self.tier1.is_some() {
                match &mut st.dram {
                    Some(CopyState::Resident { frame, pins, .. }) => {
                        *pins += 1;
                        let kind = match frame {
                            FrameRef::Full(f) => GuardKind::FullDram(*f),
                            FrameRef::Fine(_) | FrameRef::Mini(_) => GuardKind::FineGrained,
                        };
                        self.tier1_pool().touch(frame.frame());
                        drop(st);
                        self.metrics.record_dram_hit();
                        obs::record_op(Op::FetchDramHit, obs_t, pid.0, "dram");
                        return Ok(PageGuard {
                            bm: self,
                            pid,
                            kind,
                            in_dram_slot: true,
                            optimistic: false,
                        });
                    }
                    Some(_) => {
                        let stall_t = obs::op_start();
                        desc.cond.wait(&mut st);
                        obs::record_op(Op::ReaderStall, stall_t, pid.0, "dram");
                        continue;
                    }
                    None => {}
                }
            }
            // 2. NVM copy.
            if self.nvm.is_some() {
                match &mut st.nvm {
                    Some(CopyState::Resident { frame, pins, dirty }) => {
                        let f = frame.frame();
                        let cur_pins = *pins;
                        let dirty0 = *dirty;
                        // A shadow operation owns this copy's transitions:
                        // serve in place rather than promote from under it.
                        let shadowed = st.shadow_nvm;
                        // Consume the fast path's coin if it drew one;
                        // otherwise draw here (lazily). Never both — a
                        // double draw would square the probability.
                        let want_promote = self.tier1.is_some()
                            && !shadowed
                            && match promote_hint.take() {
                                Some(p) => p,
                                None => match intent {
                                    AccessIntent::Read => self.policy.flip_dr_with(|| self.draw()),
                                    AccessIntent::Write => self.policy.flip_dw_with(|| self.draw()),
                                },
                            };
                        // Non-blocking shadow promotion (the default): copy
                        // NVM→DRAM while the NVM word stays open, so hit-path
                        // readers never stall behind the move. Whole-page
                        // copies only — the fine-grained path keeps the
                        // blocking protocol (its granule I/O needs the mutex
                        // anyway).
                        if want_promote
                            && cur_pins == 0
                            && self.config.shadow_migrations
                            && self.config.fine_grained.is_none()
                        {
                            if let Some(token) = desc.nvm_pin.shadow_begin() {
                                st.shadow_nvm = true;
                                drop(st);
                                match self.promote_shadow(desc, f, token) {
                                    Ok(Some(guard)) => {
                                        obs::record_op(Op::FetchNvmHit, obs_t, pid.0, "dram");
                                        return Ok(guard);
                                    }
                                    Ok(None) => {
                                        // Aborted (raced a write, readers
                                        // draining, or no DRAM frame): the
                                        // NVM copy is untouched — serve it
                                        // in place on the retry.
                                        promote_hint = Some(false);
                                        st = desc.state.lock();
                                        continue;
                                    }
                                    Err(e) => return Err(e),
                                }
                            }
                        }
                        // Blocking promotion (shadow migrations disabled or
                        // fine-grained). Promotion needs exclusive access to
                        // the NVM copy; if it is pinned, serve from NVM
                        // instead (§5.2's drain, formulated as only starting
                        // when drained). Optimistic pins count too: closing
                        // the word is what proves there are none and stops
                        // new ones.
                        let drained = !want_promote || cur_pins > 0 || {
                            let fast_pins = desc.nvm_pin.close();
                            if fast_pins > 0 {
                                // Readers still draining: re-open and
                                // serve in place.
                                desc.nvm_pin.open(f.0);
                            }
                            fast_pins > 0
                        };
                        if drained {
                            if let Some(CopyState::Resident { pins, .. }) = &mut st.nvm {
                                *pins += 1;
                            }
                            self.nvm_pool().touch(f);
                            drop(st);
                            self.metrics.record_nvm_hit();
                            obs::record_op(Op::FetchNvmHit, obs_t, pid.0, "nvm");
                            return Ok(PageGuard {
                                bm: self,
                                pid,
                                kind: GuardKind::FullNvm(f),
                                in_dram_slot: false,
                                optimistic: false,
                            });
                        }
                        // The NVM word is now closed with zero optimistic
                        // pins: the copy is exclusively ours to promote.
                        st.nvm = Some(CopyState::Busy {
                            frame: FrameRef::Full(f),
                            pins: 0,
                            dirty: dirty0,
                        });
                        st.dram = Some(CopyState::Loading);
                        drop(st);
                        match self.promote(desc, f, dirty0) {
                            Ok(guard) => {
                                obs::record_op(Op::FetchNvmHit, obs_t, pid.0, "dram");
                                return Ok(guard);
                            }
                            Err(e) => {
                                let mut st = desc.state.lock();
                                st.dram = None;
                                let serve_from_nvm = matches!(e, BufferError::NoFrames { .. });
                                st.nvm = Some(CopyState::Resident {
                                    frame: FrameRef::Full(f),
                                    pins: u32::from(serve_from_nvm),
                                    dirty: dirty0,
                                });
                                Self::reopen_nvm_word(desc, &st);
                                desc.cond.notify_all();
                                drop(st);
                                if serve_from_nvm {
                                    // DRAM had no evictable frame: degrade
                                    // gracefully to an in-place NVM access.
                                    self.metrics.record_nvm_hit();
                                    obs::record_op(Op::FetchNvmHit, obs_t, pid.0, "nvm");
                                    return Ok(PageGuard {
                                        bm: self,
                                        pid,
                                        kind: GuardKind::FullNvm(f),
                                        in_dram_slot: false,
                                        optimistic: false,
                                    });
                                }
                                return Err(e);
                            }
                        }
                    }
                    Some(_) => {
                        let stall_t = obs::op_start();
                        desc.cond.wait(&mut st);
                        obs::record_op(Op::ReaderStall, stall_t, pid.0, "nvm");
                        continue;
                    }
                    None => {}
                }
            }
            // 3. Miss: fetch from SSD, placing per the policy (§3.3/§3.2).
            let to_dram = match (self.tier1.is_some(), self.nvm.is_some()) {
                (true, false) => true,
                (false, true) => false,
                (true, true) => match intent {
                    AccessIntent::Read => !self.policy.flip_nr_with(|| self.draw()),
                    AccessIntent::Write => self.policy.flip_dw_with(|| self.draw()),
                },
                (false, false) => unreachable!("validated: at least one buffer"),
            };
            *st.slot_mut(to_dram) = Some(CopyState::Loading);
            drop(st);
            self.metrics.record_ssd_fetch();
            match self.load_from_ssd(pid, to_dram) {
                Ok(guard) => {
                    obs::record_op(
                        Op::FetchSsdMiss,
                        obs_t,
                        pid.0,
                        if to_dram { "dram" } else { "nvm" },
                    );
                    return Ok(guard);
                }
                Err(BufferError::NoFrames { .. }) if self.tier1.is_some() && self.nvm.is_some() => {
                    // The chosen pool has no evictable frame (e.g. every NVM
                    // frame is pinned as fine-grained backing): fall back to
                    // the other tier. No other thread can have installed a
                    // copy meanwhile — they all wait on our Loading marker.
                    let mut st = desc.state.lock();
                    *st.slot_mut(to_dram) = None;
                    *st.slot_mut(!to_dram) = Some(CopyState::Loading);
                    desc.cond.notify_all();
                    drop(st);
                    match self.load_from_ssd(pid, !to_dram) {
                        Ok(guard) => {
                            obs::record_op(
                                Op::FetchSsdMiss,
                                obs_t,
                                pid.0,
                                if to_dram { "nvm" } else { "dram" },
                            );
                            return Ok(guard);
                        }
                        Err(e) => {
                            let mut st = desc.state.lock();
                            *st.slot_mut(!to_dram) = None;
                            desc.cond.notify_all();
                            return Err(e);
                        }
                    }
                }
                Err(e) => {
                    let mut st = desc.state.lock();
                    *st.slot_mut(to_dram) = None;
                    desc.cond.notify_all();
                    return Err(e);
                }
            }
        }
    }

    /// Re-open the NVM pin word if the current state allows optimistic
    /// NVM pins (Resident full-frame copy, no DRAM copy shadowing it).
    /// Call under the descriptor mutex after restoring a state.
    fn reopen_nvm_word(desc: &SharedPageDesc, st: &PageState) {
        if st.dram.is_none() {
            if let Some(CopyState::Resident {
                frame: FrameRef::Full(f),
                ..
            }) = &st.nvm
            {
                desc.nvm_pin.open(f.0);
            }
        }
    }

    /// Re-open the DRAM pin word if the DRAM slot holds a Resident
    /// full-frame copy. Call under the descriptor mutex.
    fn reopen_dram_word(desc: &SharedPageDesc, st: &PageState) {
        if let Some(CopyState::Resident {
            frame: FrameRef::Full(f),
            ..
        }) = &st.dram
        {
            desc.dram_pin.open(f.0);
        }
    }

    /// Copy an NVM-resident page up to DRAM (path ⑥, §3.1). The NVM copy
    /// is `Busy` and the DRAM slot is `Loading` on entry.
    fn promote(
        &self,
        desc: &SharedPageDesc,
        nvm_frame: FrameId,
        nvm_dirty: bool,
    ) -> Result<PageGuard<'_>> {
        if self.config.fine_grained.is_some() {
            return self.promote_fine(desc, nvm_frame, nvm_dirty);
        }
        let mig_t = obs::op_start();
        let dram_frame = self.alloc_frame(true)?;
        let page = self.config.page_size;
        with_page_buf(page, |buf| -> Result<()> {
            self.nvm_pool()
                .read(nvm_frame, 0, buf, AccessPattern::Sequential)?;
            self.tier1_pool()
                .write(dram_frame, 0, buf, AccessPattern::Sequential)?;
            Ok(())
        })?;
        self.tier1_pool().set_owner(dram_frame, desc.pid);
        let mut st = desc.state.lock();
        st.dram = Some(CopyState::Resident {
            frame: FrameRef::Full(dram_frame),
            pins: 1,
            dirty: false,
        });
        st.nvm = Some(CopyState::Resident {
            frame: FrameRef::Full(nvm_frame),
            pins: 0,
            dirty: nvm_dirty,
        });
        // DRAM copy shadows NVM: the NVM word stays closed (it was
        // closed with zero pins before the promotion started).
        desc.dram_pin.open(dram_frame.0);
        desc.cond.notify_all();
        drop(st);
        self.metrics.record_migration(MigrationPath::NvmToDram);
        obs::record_op(Op::MigNvmToDram, mig_t, desc.pid.0, "dram");
        Ok(PageGuard {
            bm: self,
            pid: desc.pid,
            kind: GuardKind::FullDram(dram_frame),
            in_dram_slot: true,
            optimistic: false,
        })
    }

    /// Non-blocking shadow-copy promotion NVM → DRAM (path ⑥ without the
    /// reader stall). On entry `st.shadow_nvm` is set and the NVM slot is
    /// untouched — still `Resident` with its word open — so both the
    /// optimistic fast path and the mutex slow path keep serving the NVM
    /// copy throughout the copy window. The transition commits through
    /// [`spitfire_sync::PinWord::shadow_commit`]: zero pins (mutex *and*
    /// optimistic) plus an unchanged version prove no write overlapped the
    /// window. Returns `Ok(None)` when the migration aborted — the NVM
    /// copy stays authoritative and the caller serves it in place.
    fn promote_shadow(
        &self,
        desc: &SharedPageDesc,
        nvm_frame: FrameId,
        token: ShadowToken,
    ) -> Result<Option<PageGuard<'_>>> {
        let mig_t = obs::op_start();
        let page = self.config.page_size;
        let dram_frame = match self.alloc_frame(true) {
            Ok(f) => f,
            Err(e) => {
                let mut st = desc.state.lock();
                st.shadow_nvm = false;
                desc.cond.notify_all();
                drop(st);
                if matches!(e, BufferError::NoFrames { .. }) {
                    self.metrics.record_shadow_abort(ShadowPath::Promote);
                    return Ok(None);
                }
                return Err(e);
            }
        };
        // The copy window: the source stays open, so a racing writer may be
        // mutating these bytes as we read them. The arena contract allows
        // that (torn bytes, never memory unsafety) because the copy is
        // validated before install — shadow_commit aborts if any write
        // bumped the version, and the torn copy is discarded.
        let copy_res = with_page_buf(page, |buf| -> Result<()> {
            self.nvm_pool()
                .read(nvm_frame, 0, buf, AccessPattern::Sequential)?;
            self.tier1_pool()
                .write(dram_frame, 0, buf, AccessPattern::Sequential)?;
            Ok(())
        });
        if let Err(e) = copy_res {
            let mut st = desc.state.lock();
            st.shadow_nvm = false;
            desc.cond.notify_all();
            drop(st);
            self.tier1_pool().free(dram_frame);
            return Err(e);
        }
        self.tier1_pool().set_owner(dram_frame, desc.pid);
        let mut st = desc.state.lock();
        st.shadow_nvm = false;
        // The shadow flag kept the slots stable (exclusions in eviction,
        // flush, and fetch): NVM is still `Resident` and no DRAM copy
        // appeared; only pins and the dirty flag may have moved. A
        // mutex-held pin may be a writer whose bytes are not yet
        // version-stamped, so commit demands zero of those too.
        let mutex_pins = match &st.nvm {
            Some(CopyState::Resident { pins, .. }) => *pins,
            _ => u32::MAX,
        };
        let committed = mutex_pins == 0 && {
            let stall_t = obs::op_start();
            let outcome = desc.nvm_pin.shadow_commit(&token, SHADOW_COMMIT_SPIN);
            obs::record_op(Op::MigrationStall, stall_t, desc.pid.0, "nvm");
            match outcome {
                ShadowOutcome::Committed => true,
                ShadowOutcome::RacedWrite | ShadowOutcome::Draining => {
                    // shadow_commit left the word closed: reopen it so the
                    // fast path resumes on the (still authoritative) copy.
                    Self::reopen_nvm_word(desc, &st);
                    false
                }
            }
        };
        if !committed {
            desc.cond.notify_all();
            drop(st);
            self.tier1_pool().free(dram_frame);
            self.metrics.record_shadow_abort(ShadowPath::Promote);
            return Ok(None);
        }
        self.metrics.record_shadow_commit(ShadowPath::Promote);
        // Committed: the NVM word is closed with zero pins and the copied
        // bytes are proven current. Install the DRAM copy; the NVM word
        // stays closed (a DRAM copy shadows it — same as blocking
        // promotion).
        st.dram = Some(CopyState::Resident {
            frame: FrameRef::Full(dram_frame),
            pins: 1,
            dirty: false,
        });
        desc.dram_pin.open(dram_frame.0);
        desc.cond.notify_all();
        drop(st);
        self.metrics.record_migration(MigrationPath::NvmToDram);
        obs::record_op(Op::MigNvmToDram, mig_t, desc.pid.0, "dram");
        Ok(Some(PageGuard {
            bm: self,
            pid: desc.pid,
            kind: GuardKind::FullDram(dram_frame),
            in_dram_slot: true,
            optimistic: false,
        }))
    }

    /// Load a page from SSD into the chosen tier (paths ① / ④). The
    /// destination slot is `Loading` on entry.
    fn load_from_ssd(&self, pid: PageId, to_dram: bool) -> Result<PageGuard<'_>> {
        let desc = self
            .mapping
            .get(&pid.0)
            .ok_or(BufferError::UnknownPage(pid))?;
        let page = self.config.page_size;
        let mig_t = obs::op_start();
        if to_dram {
            let frame = self.alloc_frame(true)?;
            with_page_buf(page, |buf| -> Result<()> {
                self.read_ssd_page(pid, buf)?;
                self.tier1_pool()
                    .write(frame, 0, buf, AccessPattern::Sequential)?;
                Ok(())
            })?;
            self.tier1_pool().set_owner(frame, pid);
            let mut st = desc.state.lock();
            st.dram = Some(CopyState::Resident {
                frame: FrameRef::Full(frame),
                pins: 1,
                dirty: false,
            });
            desc.dram_pin.open(frame.0);
            desc.cond.notify_all();
            drop(st);
            self.metrics.record_migration(MigrationPath::SsdToDram);
            obs::record_op(Op::MigSsdToDram, mig_t, pid.0, "dram");
            Ok(PageGuard {
                bm: self,
                pid,
                kind: GuardKind::FullDram(frame),
                in_dram_slot: true,
                optimistic: false,
            })
        } else {
            let frame = self.alloc_frame(false)?;
            with_page_buf(page, |buf| -> Result<()> {
                self.read_ssd_page(pid, buf)?;
                let pool = self.nvm_pool();
                pool.write(frame, 0, buf, AccessPattern::Sequential)?;
                pool.persist(frame, 0, page)?;
                pool.write_frame_header(frame, pid)?;
                Ok(())
            })?;
            self.nvm_pool().set_owner(frame, pid);
            let mut st = desc.state.lock();
            st.nvm = Some(CopyState::Resident {
                frame: FrameRef::Full(frame),
                pins: 1,
                dirty: false,
            });
            // No DRAM copy exists (waiters blocked on our Loading
            // marker), so the NVM copy is optimistically pinnable.
            desc.nvm_pin.open(frame.0);
            desc.cond.notify_all();
            drop(st);
            self.metrics.record_migration(MigrationPath::SsdToNvm);
            obs::record_op(Op::MigSsdToNvm, mig_t, pid.0, "nvm");
            Ok(PageGuard {
                bm: self,
                pid,
                kind: GuardKind::FullNvm(frame),
                in_dram_slot: false,
                optimistic: false,
            })
        }
    }

    /// Claim a frame in the requested pool. With maintenance workers
    /// running the free list is normally non-empty and this is a single
    /// bitmap pop; dipping below the low watermark kicks the workers, and
    /// an empty free list falls back to the inline eviction loop (counted
    /// as a backpressure fallback).
    pub(crate) fn alloc_frame(&self, dram: bool) -> Result<FrameId> {
        let pool = if dram {
            self.tier1_pool()
        } else {
            self.nvm_pool()
        };
        // relaxed: a stale reading of the flag only routes this alloc
        // through the wrong path (inline eviction vs. free-list pop);
        // both paths are correct on their own.
        if self.maint_active.load(Ordering::Relaxed) {
            if let Some(f) = pool.try_alloc() {
                let m = &self.config.maintenance;
                let low = if dram { m.dram_low } else { m.nvm_low };
                if pool.free_frames() < watermark_frames(pool.n_frames(), low) {
                    self.kick_maintenance();
                }
                return Ok(f);
            }
            // Workers did not keep up: do the eviction inline, like before
            // the maintenance service existed.
            self.metrics.record_backpressure_fallback();
            self.kick_maintenance();
        }
        let budget = pool.n_frames() * 4 + 256;
        for attempt in 0..budget {
            if let Some(f) = pool.try_alloc() {
                return Ok(f);
            }
            if let Some(victim) = pool.next_victim() {
                match pool.owner(victim) {
                    Some(vpid) => {
                        self.try_evict(dram, victim, vpid);
                    }
                    None => {
                        // Owner-less frames are either mid-install (skip) or
                        // mini-page slabs (evict member by member).
                        if dram {
                            self.try_evict_slab(victim);
                        }
                    }
                }
            }
            if attempt % 16 == 15 {
                std::thread::yield_now();
            }
        }
        Err(BufferError::NoFrames {
            tier: if dram { Tier::Dram } else { Tier::Nvm },
        })
    }

    /// Attempt to evict `vpid`'s copy occupying `victim` in the given pool.
    /// Returns `true` if the frame was freed.
    fn try_evict(&self, dram: bool, victim: FrameId, vpid: PageId) -> bool {
        let Some(desc) = self.mapping.get(&vpid.0) else {
            return false;
        };
        if dram {
            self.try_evict_dram(&desc, victim)
        } else {
            self.try_evict_nvm(&desc, victim)
        }
    }

    /// Evict every mini page hosted by slab frame `victim`; frees the slab
    /// once its last occupant leaves.
    fn try_evict_slab(&self, victim: FrameId) -> bool {
        let Some(mini) = &self.mini else { return false };
        if !mini.is_slab(victim) {
            return false;
        }
        let mut freed_any = false;
        for pid in mini.members_of(victim) {
            if let Some(desc) = self.mapping.get(&pid.0) {
                freed_any |= self.try_evict_dram(&desc, victim);
            }
        }
        freed_any
    }

    /// Evict the DRAM copy of `desc` if it occupies `victim` and is
    /// evictable right now.
    fn try_evict_dram(&self, desc: &SharedPageDesc, victim: FrameId) -> bool {
        let Some(mut st) = desc.state.try_lock() else {
            return false;
        };
        if st.shadow_dram || st.shadow_nvm {
            // A shadow operation owns this page's transitions right now.
            return false;
        }
        let Some(CopyState::Resident {
            frame,
            pins: 0,
            dirty,
        }) = &st.dram
        else {
            return false;
        };
        if frame.frame() != victim {
            return false;
        }
        let fref = frame.clone();
        let dirty = *dirty;
        let fine = !matches!(fref, FrameRef::Full(_));

        // Dirty full-frame copies take the non-blocking shadow write-back:
        // the device write runs while the copy stays `Resident` and its
        // word open, so readers never stall behind it. Clean copies are
        // discarded without I/O (nothing to shadow) and fine/mini copies
        // keep the blocking path (granule write-back needs the mutex).
        if self.config.shadow_migrations && dirty && !fine {
            return self.evict_dram_shadow(desc, st, fref);
        }

        // Stop optimistic pinners before committing to the eviction: a
        // non-zero fast count means readers are mid-access — re-open and
        // pick another victim. (Fine/mini copies never open the word, so
        // `close` is a no-op returning zero for them.)
        let fast_pins = desc.dram_pin.close();
        if fast_pins > 0 {
            Self::reopen_dram_word(desc, &st);
            return false;
        }

        // Decide the plan while we can still see the NVM slot.
        let plan = if !dirty {
            EvictPlan::Discard
        } else {
            match &st.nvm {
                Some(CopyState::Resident {
                    frame: nf,
                    pins,
                    dirty: nvm_dirty,
                }) => {
                    // Fine-grained copies hold one backing pin on the NVM
                    // copy; anything beyond that means concurrent readers.
                    let backing = u32::from(fine);
                    if *pins > backing {
                        Self::reopen_dram_word(desc, &st);
                        return false; // skip this victim for now
                    }
                    let nvm_frame = nf.frame();
                    let d = *nvm_dirty;
                    st.nvm = Some(CopyState::Busy {
                        frame: FrameRef::Full(nvm_frame),
                        pins: 0,
                        dirty: d,
                    });
                    if fine {
                        EvictPlan::WriteBackGranules(nvm_frame)
                    } else {
                        EvictPlan::MergeIntoNvm(nvm_frame)
                    }
                }
                Some(_) => {
                    Self::reopen_dram_word(desc, &st);
                    return false;
                }
                None => {
                    debug_assert!(!fine, "fine copies always have an NVM backing copy");
                    if self.nvm.is_some() {
                        let admit = if self.policy.uses_admission_queue() {
                            self.admission
                                .as_ref()
                                .expect("queue exists when NVM pool exists")
                                .consider(desc.pid.0)
                        } else {
                            self.policy.flip_nw_with(|| self.draw())
                        };
                        if admit {
                            EvictPlan::AdmitToNvm
                        } else {
                            EvictPlan::WriteToSsd
                        }
                    } else {
                        EvictPlan::WriteToSsd
                    }
                }
            }
        };
        st.dram = Some(CopyState::Busy {
            frame: fref.clone(),
            pins: 0,
            dirty,
        });
        drop(st);

        let evict_t = obs::op_start();
        if !self.execute_dram_eviction(desc, fref, plan) {
            return false;
        }
        self.metrics.record_dram_eviction();
        obs::record_op(Op::EvictDram, evict_t, desc.pid.0, "dram");
        true
    }

    /// Non-blocking shadow-copy eviction of a dirty full-frame DRAM copy:
    /// the write-back I/O runs while the copy stays `Resident` and its pin
    /// word open, so hit-path readers never stall behind the device write.
    /// The slot transition commits only if no write overlapped the copy
    /// window (version unchanged) and every pin — mutex and optimistic —
    /// drained; otherwise the DRAM copy stays resident, dirty, and
    /// authoritative, and the destination bytes (which may be torn) are
    /// either re-marked dirty (merge) or left as an unsynced, superseded
    /// SSD image. Takes the descriptor lock held by [`Self::try_evict_dram`].
    fn evict_dram_shadow(
        &self,
        desc: &SharedPageDesc,
        mut st: parking_lot::MutexGuard<'_, PageState>,
        fref: FrameRef,
    ) -> bool {
        let Some(token) = desc.dram_pin.shadow_begin() else {
            return false;
        };
        // Decide the plan under the lock — the same decision tree as the
        // blocking path, minus the fine-grained arm. A pre-existing NVM
        // copy is marked `Busy` for the duration (it is the merge target).
        let merge_nf = match &st.nvm {
            Some(CopyState::Resident {
                frame: nf,
                pins: 0,
                dirty: nvm_dirty,
            }) => {
                let nvm_frame = nf.frame();
                let d = *nvm_dirty;
                st.nvm = Some(CopyState::Busy {
                    frame: FrameRef::Full(nvm_frame),
                    pins: 0,
                    dirty: d,
                });
                Some(nvm_frame)
            }
            Some(_) => return false,
            None => None,
        };
        let admit = merge_nf.is_none()
            && self.nvm.is_some()
            && if self.policy.uses_admission_queue() {
                self.admission
                    .as_ref()
                    .expect("queue exists when NVM pool exists")
                    .consider(desc.pid.0)
            } else {
                self.policy.flip_nw_with(|| self.draw())
            };
        st.shadow_dram = true;
        drop(st);

        let evict_t = obs::op_start();
        let mig_t = obs::op_start();
        let page = self.config.page_size;
        // The copy window: racing writers may tear the bytes we read — the
        // commit's version check discards such a copy.
        let copy_down = |nf: FrameId, header: bool| -> Result<()> {
            with_page_buf(page, |buf| -> Result<()> {
                self.tier1_pool()
                    .read(fref.frame(), 0, buf, AccessPattern::Sequential)?;
                let pool = self.nvm_pool();
                pool.write(nf, 0, buf, AccessPattern::Sequential)?;
                pool.persist(nf, 0, page)?;
                if header {
                    pool.write_frame_header(nf, desc.pid)?;
                }
                Ok(())
            })
        };
        // (io_ok, destination NVM frame, freshly admitted?, migration path)
        let (io_ok, dest_nf, admitted, path) = match merge_nf {
            Some(nf) => (
                copy_down(nf, false).is_ok(),
                Some(nf),
                false,
                MigrationPath::DramToNvm,
            ),
            None => {
                let mut outcome = None;
                if admit {
                    if let Ok(nf) = self.alloc_frame(false) {
                        if copy_down(nf, true).is_ok() {
                            self.nvm_pool().set_owner(nf, desc.pid);
                            outcome = Some((true, Some(nf), true, MigrationPath::DramToNvm));
                        } else {
                            // Give the claimed frame back (scrubbing any
                            // partially-written header so recovery cannot
                            // adopt it) and fall back to the SSD leg.
                            let _ = self.nvm_pool().clear_frame_header(nf);
                            self.nvm_pool().free(nf);
                        }
                    }
                }
                outcome.unwrap_or_else(|| {
                    // Same as the blocking path: the eviction write is left
                    // unsynced; durability barriers (checkpoint, NVM
                    // write-back) sync before relying on SSD images.
                    (
                        self.write_dram_copy_to_ssd(desc, &fref).is_ok(),
                        None,
                        false,
                        MigrationPath::DramToSsd,
                    )
                })
            }
        };

        let mut st = desc.state.lock();
        st.shadow_dram = false;
        let mutex_pins = match &st.dram {
            Some(CopyState::Resident { pins, .. }) => *pins,
            _ => u32::MAX,
        };
        let committed = io_ok && mutex_pins == 0 && {
            let stall_t = obs::op_start();
            let outcome = desc.dram_pin.shadow_commit(&token, SHADOW_COMMIT_SPIN);
            obs::record_op(Op::MigrationStall, stall_t, desc.pid.0, "dram");
            matches!(outcome, ShadowOutcome::Committed)
        };
        if !committed {
            // Abort: the DRAM copy stays Resident, dirty, authoritative.
            // An attempted shadow_commit left the word closed — reopen it
            // (open() is a no-op if we never got that far).
            Self::reopen_dram_word(desc, &st);
            if let Some(nf) = merge_nf {
                // The merge may have landed torn bytes in the NVM copy:
                // keep it dirty so it can never be discarded as clean.
                st.nvm = Some(CopyState::Resident {
                    frame: FrameRef::Full(nf),
                    pins: 0,
                    dirty: true,
                });
            }
            desc.cond.notify_all();
            drop(st);
            if admitted {
                // The freshly admitted frame was never linked into the
                // descriptor; scrub its header and give it back.
                let nf = dest_nf.expect("admitted implies a destination frame");
                let _ = self.nvm_pool().clear_frame_header(nf);
                self.nvm_pool().free(nf);
            }
            if io_ok {
                self.metrics.record_shadow_abort(ShadowPath::Evict);
            }
            return false;
        }
        self.metrics.record_shadow_commit(ShadowPath::Evict);
        // Committed: zero pins, version unchanged — the written-down bytes
        // are proven current. Retire the DRAM copy.
        st.dram = None;
        if let Some(nf) = dest_nf {
            st.nvm = Some(CopyState::Resident {
                frame: FrameRef::Full(nf),
                pins: 0,
                dirty: true,
            });
        }
        Self::reopen_nvm_word(desc, &st);
        desc.cond.notify_all();
        drop(st);
        if let FrameRef::Full(f) = &fref {
            self.tier1_pool().free(*f);
        }
        self.metrics.record_migration(path);
        let (op, tier) = match path {
            MigrationPath::DramToNvm => (Op::MigDramToNvm, "nvm"),
            _ => (Op::MigDramToSsd, "ssd"),
        };
        obs::record_op(op, mig_t, desc.pid.0, tier);
        self.metrics.record_dram_eviction();
        obs::record_op(Op::EvictDram, evict_t, desc.pid.0, "dram");
        true
    }

    /// Undo an eviction whose I/O failed fatally: restore both copies to
    /// `Resident` (still dirty — nothing was lost) and wake waiters. The
    /// victim frame stays occupied; the allocator moves on to another one.
    fn abort_dram_eviction(
        &self,
        desc: &SharedPageDesc,
        fref: FrameRef,
        nvm_frame: Option<FrameId>,
    ) {
        let mut st = desc.state.lock();
        st.dram = Some(CopyState::Resident {
            frame: fref,
            pins: 0,
            dirty: true,
        });
        if let Some(nf) = nvm_frame {
            // The failed merge may have partially overwritten the NVM frame:
            // keep it dirty so it can never be discarded as clean.
            st.nvm = Some(CopyState::Resident {
                frame: FrameRef::Full(nf),
                pins: 0,
                dirty: true,
            });
        }
        // The DRAM copy is Resident again (NVM stays shadowed by it).
        Self::reopen_dram_word(desc, &st);
        desc.cond.notify_all();
    }

    /// SSD leg of a DRAM eviction: write the copy back, then release it.
    /// Returns `false` (with both copies restored) when the write-back
    /// failed fatally.
    fn finish_write_to_ssd(
        &self,
        desc: &SharedPageDesc,
        fref: FrameRef,
        mig_t: Option<std::time::Instant>,
    ) -> bool {
        if self.write_dram_copy_to_ssd(desc, &fref).is_err() {
            self.abort_dram_eviction(desc, fref, None);
            return false;
        }
        self.release_dram_copy(desc, fref, None);
        self.metrics.record_migration(MigrationPath::DramToSsd);
        obs::record_op(Op::MigDramToSsd, mig_t, desc.pid.0, "ssd");
        true
    }

    /// Carry out a DRAM eviction plan (no descriptor lock held during I/O).
    /// Returns `true` if the frame was freed; a fatal I/O failure restores
    /// the pre-eviction state and returns `false`.
    fn execute_dram_eviction(
        &self,
        desc: &SharedPageDesc,
        fref: FrameRef,
        plan: EvictPlan,
    ) -> bool {
        let page = self.config.page_size;
        let mig_t = obs::op_start();
        match plan {
            EvictPlan::Discard => {
                self.release_dram_copy(desc, fref, None);
                self.metrics.record_discard();
            }
            EvictPlan::MergeIntoNvm(nvm_frame) => {
                let res = with_page_buf(page, |buf| -> Result<()> {
                    self.tier1_pool()
                        .read(fref.frame(), 0, buf, AccessPattern::Sequential)?;
                    let pool = self.nvm_pool();
                    pool.write(nvm_frame, 0, buf, AccessPattern::Sequential)?;
                    pool.persist(nvm_frame, 0, page)?;
                    Ok(())
                });
                if res.is_err() {
                    self.abort_dram_eviction(desc, fref, Some(nvm_frame));
                    return false;
                }
                self.release_dram_copy(
                    desc,
                    fref,
                    Some(CopyState::Resident {
                        frame: FrameRef::Full(nvm_frame),
                        pins: 0,
                        dirty: true,
                    }),
                );
                self.metrics.record_migration(MigrationPath::DramToNvm);
                obs::record_op(Op::MigDramToNvm, mig_t, desc.pid.0, "nvm");
            }
            EvictPlan::WriteBackGranules(nvm_frame) => {
                self.write_back_granules(desc, &fref, nvm_frame);
                self.release_dram_copy(
                    desc,
                    fref,
                    Some(CopyState::Resident {
                        frame: FrameRef::Full(nvm_frame),
                        pins: 0,
                        dirty: true,
                    }),
                );
                self.metrics.record_migration(MigrationPath::DramToNvm);
                obs::record_op(Op::MigDramToNvm, mig_t, desc.pid.0, "nvm");
            }
            EvictPlan::AdmitToNvm => {
                match self.alloc_frame(false) {
                    Ok(nvm_frame) => {
                        let res = with_page_buf(page, |buf| -> Result<()> {
                            self.tier1_pool().read(
                                fref.frame(),
                                0,
                                buf,
                                AccessPattern::Sequential,
                            )?;
                            let pool = self.nvm_pool();
                            pool.write(nvm_frame, 0, buf, AccessPattern::Sequential)?;
                            pool.persist(nvm_frame, 0, page)?;
                            pool.write_frame_header(nvm_frame, desc.pid)?;
                            Ok(())
                        });
                        if res.is_err() {
                            // Give the claimed frame back (scrubbing any
                            // partially-written header so recovery cannot
                            // adopt it) and fall back to the SSD path.
                            let _ = self.nvm_pool().clear_frame_header(nvm_frame);
                            self.nvm_pool().free(nvm_frame);
                            return self.finish_write_to_ssd(desc, fref, mig_t);
                        }
                        self.nvm_pool().set_owner(nvm_frame, desc.pid);
                        self.release_dram_copy(
                            desc,
                            fref,
                            Some(CopyState::Resident {
                                frame: FrameRef::Full(nvm_frame),
                                pins: 0,
                                dirty: true,
                            }),
                        );
                        self.metrics.record_migration(MigrationPath::DramToNvm);
                        obs::record_op(Op::MigDramToNvm, mig_t, desc.pid.0, "nvm");
                    }
                    Err(_) => {
                        // NVM pool exhausted of evictable frames: fall back
                        // to the SSD path.
                        return self.finish_write_to_ssd(desc, fref, mig_t);
                    }
                }
            }
            EvictPlan::WriteToSsd => {
                return self.finish_write_to_ssd(desc, fref, mig_t);
            }
        }
        true
    }

    fn write_dram_copy_to_ssd(&self, desc: &SharedPageDesc, fref: &FrameRef) -> Result<()> {
        let page = self.config.page_size;
        with_page_buf(page, |buf| -> Result<()> {
            self.tier1_pool()
                .read(fref.frame(), 0, buf, AccessPattern::Sequential)?;
            retry_device_io(&self.metrics, "dram write-back", || {
                self.ssd.write_page(desc.pid.0, buf)
            })?;
            Ok(())
        })
    }

    /// Finish a DRAM eviction: clear the DRAM slot, restore the NVM slot
    /// (if a migration touched it), free the frame or mini slot, notify.
    fn release_dram_copy(&self, desc: &SharedPageDesc, fref: FrameRef, new_nvm: Option<CopyState>) {
        // Free the frame *after* clearing the slot so a racing fetch cannot
        // observe a freed frame id in a Resident state.
        let mut st = desc.state.lock();
        st.dram = None;
        let fine = !matches!(fref, FrameRef::Full(_));
        if let Some(nvm_state) = new_nvm {
            st.nvm = Some(nvm_state);
        } else if fine {
            // Clean fine-grained copy discarded: release the backing pin.
            if let Some(CopyState::Resident { pins, .. } | CopyState::Busy { pins, .. }) =
                &mut st.nvm
            {
                *pins = pins.saturating_sub(1);
            }
        }
        // With the DRAM copy gone, a surviving Resident NVM copy becomes
        // optimistically pinnable again.
        Self::reopen_nvm_word(desc, &st);
        desc.cond.notify_all();
        drop(st);
        match fref {
            FrameRef::Full(f) => self.tier1_pool().free(f),
            FrameRef::Fine(fp) => self.tier1_pool().free(fp.frame),
            FrameRef::Mini(mp) => {
                let mini = self.mini.as_ref().expect("mini slabs exist for mini pages");
                if mini.free_slot(mp.slot) {
                    self.tier1_pool().free(mp.slot.slab);
                }
            }
        }
    }

    /// Claim `victim`'s NVM copy for eviction or write-back: the copy must
    /// be `Resident` with zero mutex pins, occupying `victim`. `None`
    /// means back off and pick another victim.
    ///
    /// Returns `(dirty, shadow_token)`. With shadow migrations enabled, a
    /// *dirty* copy whose word is open is claimed non-blocking: the slot
    /// stays `Resident`, `st.shadow_nvm` is set, and the token later
    /// commits the transition via [`Self::commit_nvm_shadow`] once the
    /// SSD image is durable — readers never stall behind the device
    /// write + sync. Clean copies (no I/O ahead of the retirement) and
    /// copies whose word is already closed (a DRAM copy shadows them, so
    /// readers use DRAM and a blocking claim stalls nobody) take the
    /// legacy claim: slot `Busy`, word closed, token `None`.
    fn claim_nvm_victim(
        &self,
        desc: &SharedPageDesc,
        victim: FrameId,
    ) -> Option<(bool, Option<ShadowToken>)> {
        let mut st = desc.state.try_lock()?;
        if st.shadow_nvm || st.shadow_dram {
            return None;
        }
        let Some(CopyState::Resident {
            frame,
            pins: 0,
            dirty,
        }) = &st.nvm
        else {
            return None;
        };
        if frame.frame() != victim {
            return None;
        }
        let dirty = *dirty;
        if dirty && self.config.shadow_migrations {
            if let Some(token) = desc.nvm_pin.shadow_begin() {
                st.shadow_nvm = true;
                return Some((dirty, Some(token)));
            }
        }
        // Stop optimistic pinners; back off if any are mid-access. (The
        // word is already closed whenever a DRAM copy shadows this one.)
        let fast_pins = desc.nvm_pin.close();
        if fast_pins > 0 {
            Self::reopen_nvm_word(desc, &st);
            return None;
        }
        st.nvm = Some(CopyState::Busy {
            frame: FrameRef::Full(victim),
            pins: 0,
            dirty,
        });
        Some((dirty, None))
    }

    /// Commit a shadow-claimed NVM write-back after its SSD image is
    /// durable: the copy may be retired only if no write overlapped the
    /// copy window (version unchanged) and every pin drained. On success
    /// the slot is left `Busy` with the word closed — exclusively claimed,
    /// so [`Self::finish_nvm_eviction`] can clear the frame header outside
    /// the mutex. On abort the copy stays `Resident` and dirty: the synced
    /// SSD image may be stale or torn, but the NVM bytes and frame header
    /// remain authoritative for both runtime reads and crash recovery.
    fn commit_nvm_shadow(
        &self,
        desc: &SharedPageDesc,
        victim: FrameId,
        token: &ShadowToken,
    ) -> bool {
        let mut st = desc.state.lock();
        st.shadow_nvm = false;
        let mutex_pins = match &st.nvm {
            Some(CopyState::Resident { pins, .. }) => *pins,
            _ => u32::MAX,
        };
        if mutex_pins != 0 {
            self.metrics.record_shadow_abort(ShadowPath::Evict);
            desc.cond.notify_all();
            return false;
        }
        let stall_t = obs::op_start();
        let outcome = desc.nvm_pin.shadow_commit(token, SHADOW_COMMIT_SPIN);
        obs::record_op(Op::MigrationStall, stall_t, desc.pid.0, "nvm");
        match outcome {
            ShadowOutcome::Committed => {
                st.nvm = Some(CopyState::Busy {
                    frame: FrameRef::Full(victim),
                    pins: 0,
                    dirty: false,
                });
                self.metrics.record_shadow_commit(ShadowPath::Evict);
                desc.cond.notify_all();
                true
            }
            ShadowOutcome::RacedWrite | ShadowOutcome::Draining => {
                // shadow_commit left the word closed; the copy is still
                // Resident (and still dirty) — reopen so readers resume.
                Self::reopen_nvm_word(desc, &st);
                self.metrics.record_shadow_abort(ShadowPath::Evict);
                desc.cond.notify_all();
                false
            }
        }
    }

    /// Abort a shadow-claimed NVM write-back before commit (I/O failed):
    /// the copy never left `Resident` and its word was never closed, so
    /// only the claim flag needs clearing.
    fn abort_nvm_shadow(&self, desc: &SharedPageDesc) {
        let mut st = desc.state.lock();
        st.shadow_nvm = false;
        desc.cond.notify_all();
    }

    /// Release a write-back claim without retiring the copy: shadow claims
    /// just clear the flag (the copy never left `Resident`; keep it
    /// dirty), legacy claims restore `Resident` dirty and reopen the word.
    fn unclaim_nvm_writeback(
        &self,
        desc: &SharedPageDesc,
        victim: FrameId,
        token: Option<&ShadowToken>,
    ) {
        if token.is_some() {
            self.abort_nvm_shadow(desc);
        } else {
            self.restore_nvm_resident(desc, victim, true);
        }
    }

    /// Restore a claimed NVM copy to `Resident` (after a failed or
    /// non-evicting operation) and wake waiters.
    fn restore_nvm_resident(&self, desc: &SharedPageDesc, victim: FrameId, dirty: bool) {
        let mut st = desc.state.lock();
        st.nvm = Some(CopyState::Resident {
            frame: FrameRef::Full(victim),
            pins: 0,
            dirty,
        });
        Self::reopen_nvm_word(desc, &st);
        desc.cond.notify_all();
    }

    /// Complete an NVM eviction whose content is already durable on SSD
    /// (clean copy, or dirty copy written back and synced): clear the
    /// frame header, empty the slot, free the frame.
    fn finish_nvm_eviction(&self, desc: &SharedPageDesc, victim: FrameId) {
        let _ = self.nvm_pool().clear_frame_header(victim);
        let mut st = desc.state.lock();
        st.nvm = None;
        desc.cond.notify_all();
        drop(st);
        self.nvm_pool().free(victim);
        self.metrics.record_nvm_eviction();
    }

    /// Evict the NVM copy of `desc` if it occupies `victim` and is
    /// evictable (paths ⑤ / discard).
    fn try_evict_nvm(&self, desc: &SharedPageDesc, victim: FrameId) -> bool {
        let Some((dirty, token)) = self.claim_nvm_victim(desc, victim) else {
            return false;
        };
        let evict_t = obs::op_start();
        if dirty {
            let mig_t = obs::op_start();
            let page = self.config.page_size;
            // The SSD image must be *synced* before the NVM frame header is
            // cleared: the header is what recovery uses to find this page in
            // NVM, so dropping it while the SSD copy is still in the volatile
            // write cache would lose the page on a crash. (Under a shadow
            // claim the bytes may additionally be torn by a racing writer —
            // the commit below discards the write-back in that case, and the
            // retained header keeps the NVM copy authoritative.)
            let res = with_page_buf(page, |buf| -> Result<()> {
                self.nvm_pool()
                    .read(victim, 0, buf, AccessPattern::Sequential)?;
                retry_device_io(&self.metrics, "nvm write-back", || {
                    self.ssd.write_page(desc.pid.0, buf)?;
                    self.ssd.sync()
                })?;
                Ok(())
            });
            match &token {
                Some(token) => {
                    if res.is_err() {
                        self.abort_nvm_shadow(desc);
                        return false;
                    }
                    if !self.commit_nvm_shadow(desc, victim, token) {
                        return false;
                    }
                }
                None => {
                    if res.is_err() {
                        self.restore_nvm_resident(desc, victim, true);
                        return false;
                    }
                }
            }
            self.metrics.record_migration(MigrationPath::NvmToSsd);
            obs::record_op(Op::MigNvmToSsd, mig_t, desc.pid.0, "ssd");
        }
        self.finish_nvm_eviction(desc, victim);
        obs::record_op(Op::EvictNvm, evict_t, desc.pid.0, "nvm");
        true
    }

    /// Evict a batch of *claimed dirty* NVM copies with a single fsync:
    /// the page images are staged and submitted as one sorted multi-page
    /// write ([`SsdDevice::write_pages`] — coalesced into few large
    /// direct-I/O submissions on the file backend), then one sync barrier
    /// makes the whole batch durable, and only then are the frame headers
    /// cleared — the same sync-before-header-clear ordering as
    /// [`Self::try_evict_nvm`], amortized over the batch. A failed read,
    /// write, or sync releases the claims with every copy still dirty
    /// (nothing was retired, so the retry is idempotent). Shadow-claimed
    /// entries (token present) additionally commit per page: a copy whose
    /// version moved or whose readers did not drain stays resident dirty.
    /// Returns the number of frames freed.
    fn evict_nvm_batch(
        &self,
        batch: Vec<(Arc<SharedPageDesc>, FrameId, Option<ShadowToken>)>,
    ) -> usize {
        let page = self.config.page_size;
        // Stage every image in memory so the device sees one submission
        // (maintenance batches are small — default 4 pages).
        let mut staged: Vec<StagedWriteback> = Vec::with_capacity(batch.len());
        for (desc, victim, token) in batch {
            let mut buf = vec![0u8; page];
            match self
                .nvm_pool()
                .read(victim, 0, &mut buf, AccessPattern::Sequential)
            {
                Ok(()) => staged.push((desc, victim, token, buf)),
                Err(_) => self.unclaim_nvm_writeback(&desc, victim, token.as_ref()),
            }
        }
        if staged.is_empty() {
            return 0;
        }
        let mut submission: Vec<(u64, &[u8])> = staged
            .iter()
            .map(|(desc, _, _, buf)| (desc.pid.0, buf.as_slice()))
            .collect();
        let write_res = retry_device_io_n(
            &self.metrics,
            "nvm batch write-back",
            MAINT_RETRY_LIMIT,
            || self.ssd.write_pages(&mut submission).map(|_| ()),
        );
        let synced = write_res.is_ok()
            && retry_device_io(&self.metrics, "nvm batch sync", || self.ssd.sync()).is_ok();
        drop(submission);
        if !synced {
            // Nothing was retired and nothing synced: the copies stay
            // authoritative and a later cycle retries the whole batch.
            for (desc, victim, token, _) in staged {
                self.unclaim_nvm_writeback(&desc, victim, token.as_ref());
            }
            return 0;
        }
        let mut n = 0usize;
        for (desc, victim, token, _) in staged {
            let retired = match &token {
                Some(token) => self.commit_nvm_shadow(&desc, victim, token),
                None => true,
            };
            if retired {
                self.metrics.record_migration(MigrationPath::NvmToSsd);
                self.finish_nvm_eviction(&desc, victim);
                n += 1;
            }
        }
        if n > 0 {
            self.metrics.record_maint_writebacks(n as u64);
        }
        n
    }

    /// Write back up to `max` dirty NVM-resident pages to SSD in one batch
    /// (single fsync), marking them clean but keeping them resident. This
    /// is what lets the WAL truncate past NVM-resident dirty pages: after
    /// the sync their SSD images are durable, so replay no longer needs
    /// the log records that produced them. Pages with a dirty (or
    /// in-transition) DRAM copy are skipped — [`Self::flush_page`]
    /// reconciles those into NVM first. Returns the number written.
    pub fn flush_nvm_dirty(&self, max: usize) -> Result<usize> {
        if self.nvm.is_none() || max == 0 {
            return Ok(0);
        }
        let mut pids = Vec::new();
        self.mapping.for_each(|pid, _| pids.push(*pid));
        let mut claimed: Vec<(Arc<SharedPageDesc>, FrameId, Option<ShadowToken>)> = Vec::new();
        for pid in pids {
            if claimed.len() >= max {
                break;
            }
            let Some(desc) = self.mapping.get(&pid) else {
                continue;
            };
            let Some(mut st) = desc.state.try_lock() else {
                continue;
            };
            if st.shadow_nvm || st.shadow_dram {
                continue;
            }
            // A dirty or transitioning DRAM copy shadows the NVM bytes.
            if matches!(
                &st.dram,
                Some(
                    CopyState::Loading
                        | CopyState::Busy { .. }
                        | CopyState::Resident { dirty: true, .. }
                )
            ) {
                continue;
            }
            let Some(CopyState::Resident {
                frame,
                pins: 0,
                dirty: true,
            }) = &st.nvm
            else {
                continue;
            };
            let victim = frame.frame();
            if self.config.shadow_migrations {
                if let Some(token) = desc.nvm_pin.shadow_begin() {
                    // Non-blocking claim: the copy stays Resident with its
                    // word open, so readers keep hitting it for the whole
                    // batch write + sync.
                    st.shadow_nvm = true;
                    drop(st);
                    claimed.push((desc, victim, Some(token)));
                    continue;
                }
                // Word already closed: a clean DRAM copy shadows this one
                // (readers use DRAM), so the blocking claim stalls nobody.
            }
            let fast_pins = desc.nvm_pin.close();
            if fast_pins > 0 {
                Self::reopen_nvm_word(&desc, &st);
                continue;
            }
            st.nvm = Some(CopyState::Busy {
                frame: FrameRef::Full(victim),
                pins: 0,
                dirty: true,
            });
            drop(st);
            claimed.push((desc, victim, None));
        }
        if claimed.is_empty() {
            return Ok(0);
        }
        let page = self.config.page_size;
        // Stage the images and submit them as one sorted multi-page write
        // ([`SsdDevice::write_pages`] — coalesced into few large direct-I/O
        // submissions on the file backend); one sync then covers the batch.
        let mut staged: Vec<StagedWriteback> = Vec::with_capacity(claimed.len());
        let mut first_err: Option<BufferError> = None;
        for (desc, victim, token) in claimed {
            let mut buf = vec![0u8; page];
            match self
                .nvm_pool()
                .read(victim, 0, &mut buf, AccessPattern::Sequential)
            {
                Ok(()) => staged.push((desc, victim, token, buf)),
                Err(e) => {
                    self.unclaim_nvm_writeback(&desc, victim, token.as_ref());
                    first_err.get_or_insert(e);
                }
            }
        }
        if staged.is_empty() {
            return match first_err {
                Some(e) => Err(e),
                None => Ok(0),
            };
        }
        let mut submission: Vec<(u64, &[u8])> = staged
            .iter()
            .map(|(desc, _, _, buf)| (desc.pid.0, buf.as_slice()))
            .collect();
        // One sync covers the batch; a page is only marked clean once its
        // SSD image is durable (otherwise eviction could discard it while
        // the image sits in the volatile write cache).
        let res = retry_device_io(&self.metrics, "nvm flush write", || {
            self.ssd.write_pages(&mut submission).map(|_| ())
        })
        .and_then(|()| retry_device_io(&self.metrics, "nvm flush sync", || self.ssd.sync()));
        drop(submission);
        match res {
            Ok(()) => {
                let mut n = 0usize;
                for (desc, victim, token) in staged.into_iter().map(|(d, v, t, _)| (d, v, t)) {
                    match token {
                        Some(token) => {
                            if self.finish_nvm_flush_shadow(&desc, &token) {
                                n += 1;
                            }
                        }
                        None => {
                            self.restore_nvm_resident(&desc, victim, false);
                            n += 1;
                        }
                    }
                }
                self.metrics.record_maint_writebacks(n as u64);
                match first_err {
                    Some(e) => Err(e),
                    None => Ok(n),
                }
            }
            Err(e) => {
                for (desc, victim, token, _) in staged {
                    self.unclaim_nvm_writeback(&desc, victim, token.as_ref());
                }
                Err(e)
            }
        }
    }

    /// Finish a shadow-claimed NVM flush after the batch sync: mark the
    /// copy clean only if the synced image is provably the current bytes —
    /// the version is unchanged since the copy began and no pin (mutex or
    /// optimistic) is live (a pinned guard may be a writer whose bytes
    /// landed in the copy window but whose version bump has not happened
    /// yet). A copy that raced a write stays dirty — its synced SSD image
    /// may be stale or torn — and a later flush retries it. The word was
    /// never closed, so readers never stalled. Returns whether the copy
    /// went clean.
    fn finish_nvm_flush_shadow(&self, desc: &SharedPageDesc, token: &ShadowToken) -> bool {
        let mut st = desc.state.lock();
        st.shadow_nvm = false;
        let mutex_pins = match &st.nvm {
            Some(CopyState::Resident { pins, .. }) => *pins,
            _ => u32::MAX,
        };
        let clean =
            mutex_pins == 0 && desc.nvm_pin.pins() == 0 && desc.nvm_pin.shadow_still_clean(token);
        if clean {
            if let Some(CopyState::Resident { dirty, .. }) = &mut st.nvm {
                *dirty = false;
            }
            self.metrics.record_shadow_commit(ShadowPath::Flush);
        } else {
            self.metrics.record_shadow_abort(ShadowPath::Flush);
        }
        desc.cond.notify_all();
        clean
    }

    /// Create a [`Maintenance`] service handle for this manager (requires
    /// an `Arc` so worker threads can hold the manager alive). The handle
    /// starts inert: call [`Maintenance::start`] for worker threads, or
    /// drive deterministic cycles with [`Maintenance::tick`].
    pub fn maintenance(self: &Arc<Self>) -> Maintenance {
        Maintenance::new(Arc::clone(self))
    }

    /// Free frames currently available in the (DRAM, NVM) pools.
    pub fn free_frames(&self) -> (usize, usize) {
        (
            self.tier1.as_ref().map_or(0, Pool::free_frames),
            self.nvm.as_ref().map_or(0, Pool::free_frames),
        )
    }

    /// Cheap point-in-time memory-pressure reading for admission control.
    ///
    /// Reads only the pools' O(1) free-frame counters and one metrics
    /// counter — a handful of relaxed atomic loads, safe to call on every
    /// admission decision. A front end should shed or delay *new* work
    /// while [`MemoryPressure::below_low_watermark`] holds or
    /// `backpressure_fallbacks` keeps climbing between readings: both mean
    /// maintenance is not keeping up and fetches are about to run eviction
    /// I/O inline.
    pub fn pressure(&self) -> MemoryPressure {
        let m = &self.config.maintenance;
        let (dram_free, dram_low) = match &self.tier1 {
            Some(p) => (p.free_frames(), watermark_frames(p.n_frames(), m.dram_low)),
            None => (0, 0),
        };
        let (nvm_free, nvm_low) = match &self.nvm {
            Some(p) => (p.free_frames(), watermark_frames(p.n_frames(), m.nvm_low)),
            None => (0, 0),
        };
        MemoryPressure {
            dram_free,
            dram_low,
            nvm_free,
            nvm_low,
            backpressure_fallbacks: self.metrics.backpressure_fallbacks(),
        }
    }

    /// Whether `pid` currently has a DRAM-resident copy. Non-blocking:
    /// returns `false` when the descriptor mutex is contended, so this is
    /// a monitoring probe, not a synchronization primitive.
    pub fn is_dram_resident(&self, pid: PageId) -> bool {
        self.mapping
            .get(&pid.0)
            .is_some_and(|desc| desc.state.try_lock().is_some_and(|st| st.dram.is_some()))
    }

    /// Attach the wake-up signal of a maintenance service (one at a time;
    /// a newly attached signal replaces the previous one).
    pub(crate) fn attach_maint_signal(&self, sig: Arc<MaintSignal>) {
        *self.maint.write() = Some(sig);
    }

    /// Detach the maintenance signal and stop treating the service as
    /// active.
    pub(crate) fn detach_maint_signal(&self) {
        // relaxed: see `alloc_frame` — allocators observing the flag late
        // merely pick the other (still correct) allocation path.
        self.maint_active.store(false, Ordering::Relaxed);
        *self.maint.write() = None;
    }

    /// Flip the fast "workers are running" flag checked by `alloc_frame`.
    pub(crate) fn set_maint_active(&self, active: bool) {
        // relaxed: see `alloc_frame`.
        self.maint_active.store(active, Ordering::Relaxed);
    }

    /// Wake the maintenance workers (no-op without an attached service).
    fn kick_maintenance(&self) {
        if let Some(sig) = self.maint.read().as_ref() {
            sig.kick();
        }
    }

    /// One maintenance cycle: refill each pool's free list up to its high
    /// watermark by evicting replacement-policy victims, batching dirty-NVM
    /// write-backs behind a single fsync. Called from maintenance worker threads and
    /// from deterministic [`Maintenance::tick`]s; safe (but pointless) to
    /// call concurrently with itself. The cycle snapshots the crash epoch
    /// and aborts when `simulate_crash` invalidates it mid-cycle.
    pub(crate) fn maintenance_cycle(&self) -> CycleStats {
        let epoch0 = self.cache_epoch.load(Ordering::Acquire);
        let m = &self.config.maintenance;
        let mut stats = CycleStats::default();
        self.metrics.record_maint_cycle();
        if let Some(pool) = &self.tier1 {
            let target = watermark_frames(pool.n_frames(), m.dram_high);
            stats.freed_dram = self.refill_dram(pool, target, epoch0);
        }
        if let Some(pool) = &self.nvm {
            let target = watermark_frames(pool.n_frames(), m.nvm_high);
            let (freed, wrote) = self.refill_nvm(pool, target, m.batch.max(1), epoch0);
            stats.freed_nvm = freed;
            stats.nvm_writebacks = wrote;
        }
        self.metrics
            .record_maint_evictions((stats.freed_dram + stats.freed_nvm) as u64);
        stats
    }

    /// Refill the DRAM free list to `target` frames by evicting
    /// replacement-policy victims. DRAM evictions need no write-back
    /// batching (their SSD writes are not individually synced — durability
    /// comes from WAL/checkpoint syncs), but victims are still *selected*
    /// in batches so queue-based policies lock once per batch.
    fn refill_dram(&self, pool: &Pool, target: usize, epoch0: u64) -> usize {
        let mut freed = 0;
        let budget = pool.n_frames() * 2 + 16;
        let mut attempts = 0;
        let mut victims: Vec<FrameId> = Vec::new();
        while attempts < budget {
            let free = pool.free_frames();
            if free >= target || self.cache_epoch.load(Ordering::Acquire) != epoch0 {
                break;
            }
            let want = (target - free).min(budget - attempts).max(1);
            victims.clear();
            pool.next_victims(want, &mut victims);
            if victims.is_empty() {
                break;
            }
            for victim in victims.drain(..) {
                attempts += 1;
                let evicted = match pool.owner(victim) {
                    Some(vpid) => self.try_evict(true, victim, vpid),
                    None => self.try_evict_slab(victim),
                };
                freed += usize::from(evicted);
            }
        }
        freed
    }

    /// Refill the NVM free list to `target` frames. Clean victims are
    /// dropped immediately; dirty ones accumulate into batches of `batch`
    /// pages evicted with one fsync each (the maintenance service's
    /// amortization of the device cost model's per-sync latency).
    fn refill_nvm(&self, pool: &Pool, target: usize, batch: usize, epoch0: u64) -> (usize, usize) {
        let mut freed = 0;
        let mut wrote = 0;
        let budget = pool.n_frames() * 2 + 16;
        let mut attempts = 0;
        loop {
            if pool.free_frames() >= target
                || attempts >= budget
                || self.cache_epoch.load(Ordering::Acquire) != epoch0
            {
                break;
            }
            let freed_before = freed;
            let mut dirty_batch: Vec<(Arc<SharedPageDesc>, FrameId, Option<ShadowToken>)> =
                Vec::new();
            // One policy call per batch: queue-based policies take their
            // internal lock once here instead of once per candidate.
            let want = batch
                .min(budget - attempts)
                .min(target.saturating_sub(pool.free_frames()))
                .max(1);
            let mut cands: Vec<FrameId> = Vec::new();
            pool.next_victims(want, &mut cands);
            if cands.is_empty() {
                break;
            }
            for victim in cands {
                attempts += 1;
                let Some(vpid) = pool.owner(victim) else {
                    continue;
                };
                let Some(desc) = self.mapping.get(&vpid.0) else {
                    continue;
                };
                match self.claim_nvm_victim(&desc, victim) {
                    // Clean copy: durable on SSD already, drop it now.
                    Some((false, _)) => {
                        self.finish_nvm_eviction(&desc, victim);
                        freed += 1;
                    }
                    Some((true, token)) => dirty_batch.push((desc, victim, token)),
                    None => {}
                }
            }
            if dirty_batch.is_empty() {
                if freed == freed_before {
                    break; // no evictable victims left
                }
                continue;
            }
            let n = self.evict_nvm_batch(dirty_batch);
            wrote += n;
            freed += n;
            if n == 0 && freed == freed_before {
                break; // write-backs failing (injected faults): give up
            }
        }
        (freed, wrote)
    }

    /// Drop one pin on the page's copy (guard drop).
    pub(crate) fn unpin(&self, pid: PageId, in_dram_slot: bool) {
        let Some(desc) = self.mapping.get(&pid.0) else {
            return;
        };
        let mut st = desc.state.lock();
        let slot = st.slot_mut(in_dram_slot);
        if let Some(CopyState::Resident { pins, .. } | CopyState::Busy { pins, .. }) = slot {
            debug_assert!(*pins > 0, "unpin without pin on {pid}");
            *pins = pins.saturating_sub(1);
        }
        desc.cond.notify_all();
    }

    /// Mark the pinned copy dirty (guard write).
    pub(crate) fn mark_dirty(&self, pid: PageId, in_dram_slot: bool) {
        let Some(desc) = self.mapping.get(&pid.0) else {
            return;
        };
        {
            let mut st = desc.state.lock();
            if let Some(CopyState::Resident { dirty, .. } | CopyState::Busy { dirty, .. }) =
                st.slot_mut(in_dram_slot)
            {
                *dirty = true;
            }
            // Stamp the write end onto the pin word: a shadow copy taken
            // during this write's window observes the bump and discards its
            // (possibly torn) copy. Bumping while the guard's pin is still
            // held is what makes the shadow commit's drain + version
            // re-check airtight — see `PinWord::shadow_commit`.
            desc.pin_word(in_dram_slot).bump_version();
        }
        self.note_dirty_epoch(&desc);
    }

    /// Record `desc`'s page in the current checkpoint dirty epoch. This is
    /// the single content-mutation hook: every guard write funnels through
    /// `mark_dirty`, so draining the set yields exactly the pages whose
    /// images an incremental checkpoint must copy.
    fn note_dirty_epoch(&self, desc: &SharedPageDesc) {
        // relaxed: fast-path skip hint only. A stale read can at worst
        // take the mutex below unnecessarily; it can never skip a page
        // that belongs in the current epoch, because the hint is written
        // under the set mutex with the then-current epoch, and the epoch
        // only advances under that same mutex.
        let hint = desc.ckpt_epoch.load(Ordering::Relaxed);
        // relaxed: see above — re-read under the mutex before recording.
        if hint == self.dirty_epoch.load(Ordering::Relaxed) {
            return;
        }
        let mut set = self.dirty_since.lock();
        set.insert(desc.pid.0);
        // relaxed: written under the set mutex, paired with the re-read in
        // the fast path above.
        desc.ckpt_epoch
            .store(self.dirty_epoch.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Number of pages dirtied since the last [`Self::drain_dirty_epoch`].
    pub fn dirty_epoch_len(&self) -> usize {
        self.dirty_since.lock().len()
    }

    /// Start a new checkpoint epoch and return the pages dirtied during
    /// the previous one. The caller (the incremental checkpointer) copies
    /// these page images; writes racing with the drain land in the new
    /// epoch and are picked up by the next checkpoint.
    pub fn drain_dirty_epoch(&self) -> Vec<PageId> {
        let mut set = self.dirty_since.lock();
        // relaxed: the epoch bump is published by the set mutex; `mark_dirty`
        // re-reads it under the same mutex before stamping its hint.
        self.dirty_epoch.fetch_add(1, Ordering::Relaxed);
        std::mem::take(&mut *set).into_iter().map(PageId).collect()
    }

    /// Put pages back into the dirty-epoch set after a failed checkpoint so
    /// the next attempt re-copies them.
    pub fn merge_dirty_epoch(&self, pids: &[PageId]) {
        let mut set = self.dirty_since.lock();
        set.extend(pids.iter().map(|p| p.0));
    }

    /// The inclusivity ratio of the DRAM and NVM buffers (paper §3.3,
    /// Table 2): pages resident in both, over pages resident in either.
    pub fn inclusivity(&self) -> f64 {
        let mut both = 0usize;
        let mut either = 0usize;
        self.mapping.for_each(|_, desc| {
            if let Some(st) = desc.state.try_lock() {
                let d = st.dram.is_some();
                let n = st.nvm.is_some();
                if d || n {
                    either += 1;
                }
                if d && n {
                    both += 1;
                }
            }
        });
        inclusivity_ratio(both, either)
    }

    /// Number of pages currently resident in (DRAM, NVM).
    pub fn resident_pages(&self) -> (usize, usize) {
        let mut dram = 0;
        let mut nvm = 0;
        self.mapping.for_each(|_, desc| {
            if let Some(st) = desc.state.try_lock() {
                dram += usize::from(st.dram.is_some());
                nvm += usize::from(st.nvm.is_some());
            }
        });
        (dram, nvm)
    }

    /// Frames currently occupied in the (DRAM, NVM) pools.
    pub fn occupied_frames(&self) -> (usize, usize) {
        (
            self.tier1.as_ref().map_or(0, Pool::occupied_frames),
            self.nvm.as_ref().map_or(0, Pool::occupied_frames),
        )
    }

    /// Number of dirty resident pages in (DRAM, NVM).
    pub fn dirty_pages(&self) -> (usize, usize) {
        fn is_dirty(slot: &Option<CopyState>) -> bool {
            matches!(
                slot,
                Some(CopyState::Resident { dirty: true, .. } | CopyState::Busy { dirty: true, .. })
            )
        }
        let mut dram = 0;
        let mut nvm = 0;
        self.mapping.for_each(|_, desc| {
            if let Some(st) = desc.state.try_lock() {
                dram += usize::from(is_dirty(&st.dram));
                nvm += usize::from(is_dirty(&st.nvm));
            }
        });
        (dram, nvm)
    }

    /// Current occupancy of the NVM admission queue (0 without an NVM tier).
    pub fn admission_queue_len(&self) -> usize {
        self.admission.as_ref().map_or(0, AdmissionQueue::len)
    }

    /// Register this manager's state as named observability gauges (tier
    /// occupancy, dirty pages, admission-queue length, policy vector, device
    /// byte counters). Gauges hold a [`std::sync::Weak`] and disappear from
    /// the registry once the manager is dropped.
    pub fn register_obs_gauges(self: &Arc<Self>) {
        fn gauge(bm: &Arc<BufferManager>, name: &'static str, f: fn(&BufferManager) -> f64) {
            let w = Arc::downgrade(bm);
            obs::register_gauge(name, move || w.upgrade().map(|bm| f(&bm)));
        }
        gauge(self, "dram_frames_total", |bm| bm.dram_frames() as f64);
        gauge(self, "nvm_frames_total", |bm| bm.nvm_frames() as f64);
        gauge(self, "dram_occupied_frames", |bm| {
            bm.occupied_frames().0 as f64
        });
        gauge(self, "nvm_occupied_frames", |bm| {
            bm.occupied_frames().1 as f64
        });
        gauge(self, "dram_dirty_pages", |bm| bm.dirty_pages().0 as f64);
        gauge(self, "nvm_dirty_pages", |bm| bm.dirty_pages().1 as f64);
        gauge(self, "admission_queue_len", |bm| {
            bm.admission_queue_len() as f64
        });
        gauge(self, "policy_dr", |bm| bm.policy().dr);
        gauge(self, "policy_dw", |bm| bm.policy().dw);
        gauge(self, "policy_nr", |bm| bm.policy().nr);
        gauge(self, "policy_nw", |bm| bm.policy().nw);
        gauge(self, "buffer_hit_ratio", |bm| {
            bm.metrics().buffer_hit_ratio()
        });
        gauge(self, "dram_free_frames", |bm| bm.free_frames().0 as f64);
        gauge(self, "nvm_free_frames", |bm| bm.free_frames().1 as f64);
        gauge(self, "backpressure_fallbacks", |bm| {
            bm.metrics().backpressure_fallbacks as f64
        });
        // Per-path shadow-migration abort rates: aborts / (aborts +
        // commits). A rising promote rate means foreground writes are
        // racing promotions; evict/flush rates expose write-back pressure.
        gauge(self, "shadow_abort_rate_promote", |bm| {
            bm.metrics().shadow_abort_rate(ShadowPath::Promote)
        });
        gauge(self, "shadow_abort_rate_evict", |bm| {
            bm.metrics().shadow_abort_rate(ShadowPath::Evict)
        });
        gauge(self, "shadow_abort_rate_flush", |bm| {
            bm.metrics().shadow_abort_rate(ShadowPath::Flush)
        });
        for (tier, label) in [(Tier::Dram, "dram"), (Tier::Nvm, "nvm"), (Tier::Ssd, "ssd")] {
            let w = Arc::downgrade(self);
            obs::register_gauge(format!("{label}_bytes_read"), move || {
                let stats = w.upgrade()?.device_stats(tier)?;
                Some(stats.snapshot().bytes_read as f64)
            });
            let w = Arc::downgrade(self);
            obs::register_gauge(format!("{label}_bytes_written"), move || {
                let stats = w.upgrade()?.device_stats(tier)?;
                Some(stats.snapshot().bytes_written as f64)
            });
        }
    }

    /// Add this manager's counters ([`BufferMetrics`], per-device stats) and
    /// point-in-time gauges to an observability report. Gauges already
    /// present in the report (e.g. from registered weak gauges) are not
    /// duplicated.
    pub fn fill_obs_report(&self, report: &mut obs::Report) {
        let m = self.metrics.snapshot();
        report.add_counter("dram_hits", m.dram_hits);
        report.add_counter("nvm_hits", m.nvm_hits);
        report.add_counter("ssd_fetches", m.ssd_fetches);
        report.add_counter("evictions_dram", m.evictions_dram);
        report.add_counter("evictions_nvm", m.evictions_nvm);
        report.add_counter("discards", m.discards);
        report.add_counter("fetch_fast", m.fetch_fast);
        report.add_counter("fetch_fallbacks", m.fetch_fallbacks);
        report.add_counter("pin_restarts", m.pin_restarts);
        report.add_counter("backpressure_fallbacks", m.backpressure_fallbacks);
        report.add_counter("maint_cycles", m.maint_cycles);
        report.add_counter("maint_evictions", m.maint_evictions);
        report.add_counter("maint_writebacks", m.maint_writebacks);
        report.add_counter("migrations_aborted", m.migrations_aborted);
        for path in ShadowPath::ALL {
            let name = path.name();
            report.add_counter(
                format!("shadow_aborts_{name}"),
                m.shadow_aborts[path as usize],
            );
            report.add_counter(
                format!("shadow_commits_{name}"),
                m.shadow_commits[path as usize],
            );
        }
        for path in MigrationPath::ALL {
            let label = path.label().replace("->", "_to_");
            report.add_counter(format!("migrations_{label}"), m.path(path));
        }
        for (tier, label) in [(Tier::Dram, "dram"), (Tier::Nvm, "nvm"), (Tier::Ssd, "ssd")] {
            if let Some(stats) = self.device_stats(tier) {
                let s = stats.snapshot();
                report.add_counter(format!("{label}_read_ops"), s.read_ops);
                report.add_counter(format!("{label}_write_ops"), s.write_ops);
                report.add_counter(format!("{label}_bytes_read"), s.bytes_read);
                report.add_counter(format!("{label}_bytes_written"), s.bytes_written);
                report.add_counter(format!("{label}_bytes_flushed"), s.bytes_flushed);
                report.add_counter(format!("{label}_fences"), s.fences);
            }
        }
        let have: std::collections::HashSet<&str> =
            report.gauges.iter().map(|(n, _)| n.as_str()).collect();
        let mut fresh: Vec<(String, f64)> = Vec::new();
        let mut gauge = |name: &str, v: f64| {
            if !have.contains(name) {
                fresh.push((name.to_string(), v));
            }
        };
        let (dram_occ, nvm_occ) = self.occupied_frames();
        gauge("dram_occupied_frames", dram_occ as f64);
        gauge("nvm_occupied_frames", nvm_occ as f64);
        let (dram_free, nvm_free) = self.free_frames();
        gauge("dram_free_frames", dram_free as f64);
        gauge("nvm_free_frames", nvm_free as f64);
        let (dram_dirty, nvm_dirty) = self.dirty_pages();
        gauge("dram_dirty_pages", dram_dirty as f64);
        gauge("nvm_dirty_pages", nvm_dirty as f64);
        gauge("admission_queue_len", self.admission_queue_len() as f64);
        let p = self.policy();
        gauge("policy_dr", p.dr);
        gauge("policy_dw", p.dw);
        gauge("policy_nr", p.nr);
        gauge("policy_nw", p.nw);
        gauge("buffer_hit_ratio", m.buffer_hit_ratio());
        gauge("inclusivity", self.inclusivity());
        for path in ShadowPath::ALL {
            gauge(
                &format!("shadow_abort_rate_{}", path.name()),
                m.shadow_abort_rate(path),
            );
        }
        report.gauges.extend(fresh);
    }

    /// Write the dirty DRAM copy of `pid` down to SSD without evicting it
    /// (checkpointer; paper §5.2 Recovery: DRAM pages are flushed for log
    /// truncation, NVM pages are not because NVM is persistent). Returns
    /// `true` if a flush happened; pinned or busy pages are skipped.
    pub fn flush_page(&self, pid: PageId) -> Result<bool> {
        let Some(desc) = self.mapping.get(&pid.0) else {
            return Ok(false);
        };
        let mut st = desc.state.lock();
        if st.shadow_dram || st.shadow_nvm {
            // A shadow operation owns this page's transitions right now;
            // the checkpointer will come back.
            return Ok(false);
        }
        let Some(CopyState::Resident {
            frame,
            pins: 0,
            dirty: true,
        }) = &st.dram
        else {
            return Ok(false);
        };
        let fref = frame.clone();
        if matches!(fref, FrameRef::Fine(_) | FrameRef::Mini(_)) {
            // Fine-grained copies flush through their NVM backing on
            // eviction; the NVM copy is persistent already.
            return Ok(false);
        }
        // If the page also has an NVM copy, reconcile into NVM instead of
        // SSD — the NVM copy may be stale relative to DRAM, and leaving it
        // stale-dirty would shadow the flushed version after the clean DRAM
        // copy is discarded. This also matches the paper's recovery
        // protocol: NVM-resident modified pages are not flushed to SSD
        // because NVM is persistent.
        let nvm_target = match &st.nvm {
            Some(CopyState::Resident {
                frame: nf, pins: 0, ..
            }) => Some(nf.frame()),
            Some(_) => return Ok(false), // NVM copy pinned or in transition
            None => None,
        };
        if self.config.shadow_migrations {
            return self.flush_page_shadow(&desc, st, fref, nvm_target);
        }
        // Stop optimistic pinners on the DRAM copy; skip this flush if
        // readers are mid-access (the checkpointer will come back).
        let fast_pins = desc.dram_pin.close();
        if fast_pins > 0 {
            Self::reopen_dram_word(&desc, &st);
            return Ok(false);
        }
        st.dram = Some(CopyState::Busy {
            frame: fref.clone(),
            pins: 0,
            dirty: true,
        });
        if let Some(nf) = nvm_target {
            st.nvm = Some(CopyState::Busy {
                frame: FrameRef::Full(nf),
                pins: 0,
                dirty: true,
            });
        }
        drop(st);
        match nvm_target {
            Some(nf) => {
                let page = self.config.page_size;
                let res = with_page_buf(page, |buf| -> Result<()> {
                    self.tier1_pool()
                        .read(fref.frame(), 0, buf, AccessPattern::Sequential)?;
                    let pool = self.nvm_pool();
                    pool.write(nf, 0, buf, AccessPattern::Sequential)?;
                    pool.persist(nf, 0, page)?;
                    Ok(())
                });
                // On failure the DRAM copy stays dirty (nothing was lost)
                // and the error propagates to the checkpointer.
                let mut st = desc.state.lock();
                st.dram = Some(CopyState::Resident {
                    frame: fref,
                    pins: 0,
                    dirty: res.is_err(),
                });
                st.nvm = Some(CopyState::Resident {
                    frame: FrameRef::Full(nf),
                    pins: 0,
                    dirty: true,
                });
                Self::reopen_dram_word(&desc, &st);
                desc.cond.notify_all();
                drop(st);
                res?;
            }
            None => {
                // A flush is a durability point (checkpoints and catalog
                // writes rely on it), so it must survive a crash: sync.
                let res = self.write_dram_copy_to_ssd(&desc, &fref).and_then(|()| {
                    retry_device_io(&self.metrics, "flush sync", || self.ssd.sync())
                });
                let mut st = desc.state.lock();
                st.dram = Some(CopyState::Resident {
                    frame: fref,
                    pins: 0,
                    dirty: res.is_err(),
                });
                Self::reopen_dram_word(&desc, &st);
                desc.cond.notify_all();
                drop(st);
                res?;
            }
        }
        Ok(true)
    }

    /// Non-blocking checkpoint flush: write the dirty DRAM copy down
    /// without ever closing its pin word, so hit-path readers never stall
    /// behind the checkpointer's device write + sync. The copy is marked
    /// clean only if the flushed image is provably untorn — no pin (mutex
    /// or optimistic) outstanding and no version bump since the copy began.
    /// Otherwise the page stays dirty and the caller gets `Ok(false)`: the
    /// checkpointer must treat a raced flush as *not flushed*, because the
    /// synced SSD image may be torn or stale and must not let the WAL
    /// truncate past this page. Takes the descriptor lock held by
    /// [`Self::flush_page`].
    fn flush_page_shadow(
        &self,
        desc: &SharedPageDesc,
        mut st: parking_lot::MutexGuard<'_, PageState>,
        fref: FrameRef,
        nvm_target: Option<FrameId>,
    ) -> Result<bool> {
        let Some(token) = desc.dram_pin.shadow_begin() else {
            return Ok(false);
        };
        st.shadow_dram = true;
        if let Some(nf) = nvm_target {
            // The reconcile target is exclusively ours for the duration.
            st.nvm = Some(CopyState::Busy {
                frame: FrameRef::Full(nf),
                pins: 0,
                dirty: true,
            });
        }
        drop(st);
        let page = self.config.page_size;
        let res = match nvm_target {
            Some(nf) => with_page_buf(page, |buf| -> Result<()> {
                self.tier1_pool()
                    .read(fref.frame(), 0, buf, AccessPattern::Sequential)?;
                let pool = self.nvm_pool();
                pool.write(nf, 0, buf, AccessPattern::Sequential)?;
                pool.persist(nf, 0, page)?;
                Ok(())
            }),
            // A flush is a durability point (checkpoints and catalog writes
            // rely on it), so it must survive a crash: sync.
            None => self
                .write_dram_copy_to_ssd(desc, &fref)
                .and_then(|()| retry_device_io(&self.metrics, "flush sync", || self.ssd.sync())),
        };
        let mut st = desc.state.lock();
        st.shadow_dram = false;
        if let Some(nf) = nvm_target {
            // Dirty regardless of outcome: the NVM copy now holds either
            // the reconciled bytes (which supersede its old content) or a
            // torn/partial merge — in both cases it must be written down
            // before being discarded.
            st.nvm = Some(CopyState::Resident {
                frame: FrameRef::Full(nf),
                pins: 0,
                dirty: true,
            });
        }
        // Mark clean only if the flushed image is provably the current
        // bytes: version unchanged since the copy began AND no pin live. A
        // pinned guard may be a writer whose bytes landed in the copy
        // window but whose version bump has not happened yet; the pin
        // checks close that window (a guard write bumps before its unpin).
        let mutex_pins = match &st.dram {
            Some(CopyState::Resident { pins, .. }) => *pins,
            _ => u32::MAX,
        };
        let clean = res.is_ok()
            && mutex_pins == 0
            && desc.dram_pin.pins() == 0
            && desc.dram_pin.shadow_still_clean(&token);
        if clean {
            if let Some(CopyState::Resident { dirty, .. }) = &mut st.dram {
                *dirty = false;
            }
        }
        desc.cond.notify_all();
        drop(st);
        if res.is_ok() {
            if clean {
                self.metrics.record_shadow_commit(ShadowPath::Flush);
            } else {
                self.metrics.record_shadow_abort(ShadowPath::Flush);
            }
        }
        res?;
        Ok(clean)
    }

    /// Flush every dirty, unpinned DRAM page to SSD. Returns the number of
    /// pages flushed.
    pub fn flush_all_dirty(&self) -> Result<usize> {
        let mut pids = Vec::new();
        self.mapping.for_each(|pid, _| pids.push(PageId(*pid)));
        let mut flushed = 0;
        for pid in pids {
            if self.flush_page(pid)? {
                flushed += 1;
            }
        }
        Ok(flushed)
    }

    /// Simulate a process crash with power loss: volatile state (mapping
    /// table, DRAM buffer) is discarded and un-persisted NVM writes are
    /// rolled back. Only meaningful with
    /// [`spitfire_device::PersistenceTracking::Full`].
    pub fn simulate_crash(&self) {
        self.mapping.clear();
        // The dirty-epoch set tracked volatile state that just died with
        // the mapping table; recovery repopulates it through `mark_dirty`
        // as redo rewrites pages.
        self.dirty_since.lock().clear();
        // Release-bump *after* clearing: a fast path that observes the new
        // epoch (Acquire) also observes the cleared table and cannot
        // re-cache a dead descriptor under it.
        self.cache_epoch.fetch_add(1, Ordering::Release);
        self.ssd.simulate_crash();
        if let Some(t1) = &self.tier1 {
            for i in 0..t1.n_frames() {
                let f = FrameId(i as u32);
                if t1.owner(f).is_some() {
                    t1.free(f);
                }
            }
        }
        if let Some(nvm) = &self.nvm {
            if let Some(dev) = nvm.nvm_device() {
                dev.simulate_crash();
            }
            for i in 0..nvm.n_frames() {
                let f = FrameId(i as u32);
                if nvm.owner(f).is_some() {
                    nvm.free(f);
                }
            }
        }
    }

    /// Rebuild the mapping table from the persistent NVM buffer (paper
    /// §5.2 Recovery, step 1: "scanning the NVM buffer to collect the page
    /// ids and to construct the mapping table"). Returns the recovered page
    /// ids. NVM-resident pages are marked dirty: they may be newer than
    /// their SSD counterparts.
    pub fn recover_nvm_buffer(&self) -> Vec<PageId> {
        let Some(nvm) = &self.nvm else {
            return Vec::new();
        };
        let mut recovered = Vec::new();
        for (frame, pid) in nvm.scan_frame_headers() {
            nvm.adopt(frame, pid);
            let desc = self
                .mapping
                .get_or_insert_with(pid.0, || Arc::new(SharedPageDesc::new(pid)));
            let mut st = desc.state.lock();
            st.nvm = Some(CopyState::Resident {
                frame: FrameRef::Full(frame),
                pins: 0,
                dirty: true,
            });
            // Recovered pages have no DRAM copy: optimistically pinnable.
            desc.nvm_pin.open(frame.0);
            recovered.push(pid);
            // Ensure the allocator never re-issues a recovered id.
            self.next_pid.fetch_max(pid.0 + 1, Ordering::AcqRel);
        }
        recovered
    }

    /// Install a snapshot page image during recovery: write it to the SSD
    /// home location and, if the NVM scan adopted a (possibly *older*)
    /// persistent copy of the same page, overwrite that copy too so it
    /// cannot shadow the image. An NVM copy can predate the snapshot —
    /// the page may have been re-dirtied in DRAM and flushed again after
    /// its NVM write-back — so NVM content must not take precedence here.
    /// Any effects newer than the image are reconstructed by the WAL-tail
    /// replay that follows. The caller batches images and calls
    /// [`BufferManager::sync_ssd`] once at the end.
    pub fn install_page_image(&self, pid: PageId, image: &[u8]) -> Result<()> {
        assert_eq!(image.len(), self.config.page_size, "page image size");
        retry_device_io(&self.metrics, "snapshot install", || {
            self.ssd.write_page(pid.0, image)
        })?;
        self.next_pid.fetch_max(pid.0 + 1, Ordering::AcqRel);
        let Some(desc) = self.mapping.get(&pid.0) else {
            return Ok(());
        };
        let st = desc.state.lock();
        if let Some(CopyState::Resident {
            frame: FrameRef::Full(frame),
            ..
        }) = &st.nvm
        {
            let pool = self.nvm_pool();
            pool.write(*frame, 0, image, AccessPattern::Sequential)?;
            pool.persist(*frame, 0, image.len())?;
        }
        Ok(())
    }

    /// Restore the page-id allocator from the persistent devices: the SSD
    /// page store plus whatever the NVM scan recovered. Returns the new
    /// allocator floor.
    pub fn recover_page_allocator(&self) -> u64 {
        if let Some(max) = self.ssd.max_page_id() {
            self.next_pid.fetch_max(max + 1, Ordering::AcqRel);
        }
        self.next_pid.load(Ordering::Acquire)
    }

    /// Assert that no pins are outstanding and every descriptor's pin
    /// words agree with its copy states (stress-harness invariant check;
    /// call only when no guards are live and no migrations are running).
    ///
    /// Invariants checked per page: mutex pin counts are zero, optimistic
    /// pin counts are zero, the DRAM word is open iff the DRAM slot holds
    /// a Resident full-frame copy, and the NVM word is open iff the NVM
    /// slot holds one *and* no DRAM copy shadows it.
    pub fn assert_quiescent(&self) {
        fn full_resident(slot: &Option<CopyState>) -> bool {
            matches!(
                slot,
                Some(CopyState::Resident {
                    frame: FrameRef::Full(_),
                    ..
                })
            )
        }
        fn mutex_pins(slot: &Option<CopyState>) -> u32 {
            match slot {
                Some(CopyState::Resident { pins, .. } | CopyState::Busy { pins, .. }) => *pins,
                _ => 0,
            }
        }
        self.mapping.for_each(|pid, desc| {
            let st = desc.state.lock();
            assert!(!st.shadow_dram, "page {pid}: dram shadow op in flight");
            assert!(!st.shadow_nvm, "page {pid}: nvm shadow op in flight");
            assert_eq!(mutex_pins(&st.dram), 0, "page {pid}: dram mutex pins");
            assert_eq!(mutex_pins(&st.nvm), 0, "page {pid}: nvm mutex pins");
            assert_eq!(desc.dram_pin.pins(), 0, "page {pid}: dram fast pins");
            assert_eq!(desc.nvm_pin.pins(), 0, "page {pid}: nvm fast pins");
            assert_eq!(
                desc.dram_pin.is_open(),
                full_resident(&st.dram),
                "page {pid}: dram word/slot disagree ({:?})",
                st.dram
            );
            assert_eq!(
                desc.nvm_pin.is_open(),
                st.dram.is_none() && full_resident(&st.nvm),
                "page {pid}: nvm word/slot disagree (dram {:?}, nvm {:?})",
                st.dram,
                st.nvm
            );
        });
    }
}

/// Administrative handle over a [`BufferManager`]: every runtime mutator
/// that used to live as a free-standing `set_*` method on the manager is
/// grouped here, so the manager's own surface is read-mostly and the
/// mutating entry points are greppable as `admin()` calls.
///
/// Obtained from [`BufferManager::admin`]; borrows the manager, so it is
/// cheap to create on demand and cannot outlive it.
pub struct Admin<'a> {
    bm: &'a BufferManager,
}

impl Admin<'_> {
    /// Swap the active migration policy (used by the adaptive tuner, §4).
    pub fn set_policy(&self, policy: MigrationPolicy) {
        self.bm.policy.store(policy);
    }

    /// Change the emulated-delay scale on every device at runtime. Load
    /// phases run at [`spitfire_device::TimeScale::ZERO`] (no delays),
    /// measurement at `REAL`; counters are unaffected.
    pub fn set_time_scale(&self, scale: spitfire_device::TimeScale) {
        if let Some(p) = &self.bm.tier1 {
            p.set_time_scale(scale);
        }
        if let Some(p) = &self.bm.nvm {
            p.set_time_scale(scale);
        }
        self.bm.ssd.set_time_scale(scale);
    }

    /// Install (or clear) a fault injector on every device in the
    /// hierarchy. Chaos harness entry point; `None` restores fault-free
    /// operation.
    pub fn set_fault_injector(&self, injector: Option<Arc<FaultInjector>>) {
        if let Some(p) = &self.bm.tier1 {
            p.set_fault_injector(injector.clone());
        }
        if let Some(p) = &self.bm.nvm {
            p.set_fault_injector(injector.clone());
        }
        self.bm.ssd.set_fault_injector(injector);
    }

    /// Restore the page-id allocator after recovery (ids present only on
    /// SSD are the caller's to account for, e.g. from a catalog page).
    pub fn set_next_page_id(&self, next: u64) {
        self.bm.next_pid.fetch_max(next, Ordering::AcqRel);
    }
}

impl std::fmt::Debug for BufferManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferManager")
            .field("hierarchy", &self.hierarchy())
            .field("dram_frames", &self.dram_frames())
            .field("nvm_frames", &self.nvm_frames())
            .field("pages", &self.page_count())
            .finish_non_exhaustive()
    }
}

/// Translate a fractional watermark into a frame count: `ceil(n * frac)`,
/// so any non-zero watermark on a non-empty pool demands at least one
/// free frame.
pub(crate) fn watermark_frames(n_frames: usize, frac: f64) -> usize {
    (n_frames as f64 * frac).ceil() as usize
}

/// Point-in-time memory-pressure reading from [`BufferManager::pressure`].
///
/// Free-frame counts are compared against the maintenance *low* watermarks
/// (the level at which workers are woken to refill): below them, a fetch
/// miss is likely to run eviction inline. `backpressure_fallbacks` is the
/// cumulative count of exactly those inline evictions — a caller polling
/// pressure should treat a rising delta as overload even when the free
/// counts look momentarily healthy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryPressure {
    /// Free frames in the DRAM pool (0 without a DRAM tier).
    pub dram_free: usize,
    /// DRAM low watermark in frames (0 without a DRAM tier).
    pub dram_low: usize,
    /// Free frames in the NVM pool (0 without an NVM tier).
    pub nvm_free: usize,
    /// NVM low watermark in frames (0 without an NVM tier).
    pub nvm_low: usize,
    /// Cumulative fetches that ran eviction inline because the free list
    /// was empty (see `MetricsSnapshot::backpressure_fallbacks`).
    pub backpressure_fallbacks: u64,
}

impl MemoryPressure {
    /// Whether any tier's free frames sit below its low watermark.
    pub fn below_low_watermark(&self) -> bool {
        self.dram_free < self.dram_low || self.nvm_free < self.nvm_low
    }
}

/// SplitMix64 scrambler: seeds the per-thread policy RNG streams with
/// well-mixed, pairwise-independent states.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Run `f` with a thread-local scratch buffer of `len` bytes. Re-entrant:
/// nested calls each get their own buffer from a per-thread pool.
pub(crate) fn with_page_buf<T>(len: usize, f: impl FnOnce(&mut [u8]) -> T) -> T {
    thread_local! {
        static POOL: std::cell::RefCell<Vec<Vec<u8>>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }
    let mut buf = POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
    if buf.len() < len {
        buf.resize(len, 0);
    }
    let out = f(&mut buf[..len]);
    POOL.with(|p| p.borrow_mut().push(buf));
    out
}
