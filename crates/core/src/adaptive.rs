//! Adaptive data migration via simulated annealing (paper §4, §6.4).
//!
//! The tuner treats the migration policy ⟨D_r, D_w, N_r, N_w⟩ as a point on
//! a small lattice of probabilities and searches for the point minimizing
//! `cost(P) = 1 / throughput(P)`. Each *epoch* the host runs the workload
//! under the candidate policy, measures throughput, and feeds it back; the
//! tuner then either accepts the candidate (always, if it was better;
//! with probability `exp(-γ·Δ/t)` if worse) and proposes a neighbour. The
//! temperature `t` cools geometrically (`t ← α·t`), so early epochs explore
//! and late epochs exploit — which is why the Figure 10 curves converge.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::policy::MigrationPolicy;
use crate::replacement::PolicyConfig;

/// Probability lattice searched by the tuner. Matches the values the paper
/// sweeps in §6.3 plus intermediate points.
pub const POLICY_LATTICE: [f64; 7] = [0.0, 0.01, 0.05, 0.1, 0.2, 0.5, 1.0];

/// What the tuner minimizes.
///
/// The paper's cost function is `1/T` (§4). §6.3 notes that "the optimal
/// policy must be chosen depending on the performance requirements and
/// write endurance characteristics of NVM" — the endurance-aware variant
/// makes that trade-off explicit by penalizing NVM write volume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostObjective {
    /// `cost = 1 / throughput` (the paper's default).
    Throughput,
    /// `cost = (1 + λ · nvm_mb_per_op) / throughput`: λ converts NVM write
    /// volume (MB per operation) into a throughput-equivalent penalty,
    /// steering the search toward endurance-friendly policies.
    ThroughputWithEndurance {
        /// Weight of the write-volume penalty.
        lambda: f64,
    },
    /// `cost = (1 + λ · p99_ms) / throughput`: folds the observed p99
    /// operation latency (milliseconds, e.g. from the `workload_op`
    /// observability histogram) into the cost, steering the search toward
    /// policies with good tail latency rather than raw throughput alone.
    /// Falls back to the plain objective for epochs without a p99 sample.
    TailLatency {
        /// Weight of the tail-latency penalty (per millisecond of p99).
        lambda: f64,
    },
}

/// Per-epoch measurements fed back to the tuner via
/// [`AnnealingTuner::observe_epoch`].
#[derive(Debug, Clone, Copy, Default)]
pub struct EpochStats {
    /// Operations per second achieved under the candidate policy.
    pub throughput: f64,
    /// NVM write volume in MB per operation (endurance objective).
    pub nvm_mb_per_op: f64,
    /// 99th-percentile operation latency in nanoseconds (tail objective),
    /// typically `spitfire_obs::registry().histogram(Op::WorkloadOp)`'s
    /// epoch-delta quantile.
    pub p99_latency_ns: Option<u64>,
}

/// Tuning parameters (defaults follow §6.4: α = 0.9, γ = 10, t₀ = 800,
/// t_final = 0.00008).
#[derive(Debug, Clone, Copy)]
pub struct AnnealingParams {
    /// Geometric cooling rate α.
    pub cooling: f64,
    /// Cost-difference scale γ.
    pub gamma: f64,
    /// Initial temperature.
    pub initial_temp: f64,
    /// Temperature floor.
    pub final_temp: f64,
    /// The cost function being minimized.
    pub objective: CostObjective,
}

impl Default for AnnealingParams {
    fn default() -> Self {
        AnnealingParams {
            cooling: 0.9,
            gamma: 10.0,
            initial_temp: 800.0,
            final_temp: 0.00008,
            objective: CostObjective::Throughput,
        }
    }
}

/// One epoch's record, kept for convergence plots (Figure 10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// The policy evaluated this epoch.
    pub policy: MigrationPolicy,
    /// Observed throughput (operations per second).
    pub throughput: f64,
    /// Whether the candidate was accepted as the new current point.
    pub accepted: bool,
    /// Temperature at the end of the epoch.
    pub temperature: f64,
    /// The replacement policy evaluated this epoch (`None` when the
    /// replacement axis is disabled).
    pub replacement: Option<PolicyConfig>,
}

/// Simulated-annealing policy tuner.
#[derive(Debug)]
pub struct AnnealingTuner {
    params: AnnealingParams,
    temperature: f64,
    rng: StdRng,
    /// Best-known point and its cost.
    current: MigrationPolicy,
    current_cost: Option<f64>,
    /// Candidate currently being evaluated by the host.
    candidate: MigrationPolicy,
    /// Replacement-policy axis (disabled unless
    /// [`Self::with_replacement_axis`] is called): the accepted and
    /// candidate replacement choices searched alongside the migration
    /// knobs.
    current_replacement: Option<PolicyConfig>,
    candidate_replacement: Option<PolicyConfig>,
    history: Vec<EpochRecord>,
}

fn nearest_lattice_index(p: f64) -> usize {
    POLICY_LATTICE
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            (*a - p)
                .abs()
                .partial_cmp(&(*b - p).abs())
                .expect("lattice values are finite")
        })
        .map(|(i, _)| i)
        .expect("lattice is non-empty")
}

impl AnnealingTuner {
    /// A tuner starting from `initial` (the paper starts eager: D = N = 1).
    pub fn new(initial: MigrationPolicy, params: AnnealingParams, seed: u64) -> Self {
        AnnealingTuner {
            params,
            temperature: params.initial_temp,
            rng: StdRng::seed_from_u64(seed),
            current: initial,
            current_cost: None,
            candidate: initial,
            current_replacement: None,
            candidate_replacement: None,
            history: Vec::new(),
        }
    }

    /// Enable the replacement-policy axis starting from `initial`: some
    /// proposals switch the buffer pool's replacement policy instead of a
    /// migration knob. The host reads [`Self::candidate_replacement`] each
    /// epoch and rebuilds (or selects) the manager accordingly — the
    /// replacement policy is fixed at pool construction, so unlike the
    /// migration knobs it cannot be swapped on a live manager.
    pub fn with_replacement_axis(mut self, initial: PolicyConfig) -> Self {
        self.current_replacement = Some(initial);
        self.candidate_replacement = Some(initial);
        self
    }

    /// The policy the host should run during the upcoming epoch.
    pub fn candidate(&self) -> MigrationPolicy {
        self.candidate
    }

    /// The replacement policy the host should run during the upcoming
    /// epoch (`None` when the replacement axis is disabled).
    pub fn candidate_replacement(&self) -> Option<PolicyConfig> {
        self.candidate_replacement
    }

    /// The best replacement policy accepted so far (`None` when the axis
    /// is disabled).
    pub fn current_replacement(&self) -> Option<PolicyConfig> {
        self.current_replacement
    }

    /// Current temperature.
    pub fn temperature(&self) -> f64 {
        self.temperature
    }

    /// Epoch history for convergence plots.
    pub fn history(&self) -> &[EpochRecord] {
        &self.history
    }

    /// The best point accepted so far.
    pub fn current(&self) -> MigrationPolicy {
        self.current
    }

    /// Feed back the throughput observed while running [`Self::candidate`];
    /// returns the policy for the next epoch. Uses the plain throughput
    /// objective regardless of configuration (no write volume supplied).
    pub fn observe(&mut self, throughput: f64) -> MigrationPolicy {
        self.observe_with(throughput, 0.0)
    }

    /// Feed back throughput *and* the NVM write volume (MB per operation)
    /// observed during the epoch; the endurance-aware objective folds the
    /// volume into the cost.
    pub fn observe_with(&mut self, throughput: f64, nvm_mb_per_op: f64) -> MigrationPolicy {
        self.observe_epoch(EpochStats {
            throughput,
            nvm_mb_per_op,
            p99_latency_ns: None,
        })
    }

    /// Feed back a full epoch measurement (throughput, NVM write volume,
    /// tail latency); the configured [`CostObjective`] decides which parts
    /// enter the cost. Also publishes the annealing temperature as the
    /// `sa_temperature` observability gauge.
    pub fn observe_epoch(&mut self, stats: EpochStats) -> MigrationPolicy {
        let throughput = stats.throughput;
        let penalty = match self.params.objective {
            CostObjective::Throughput => 1.0,
            CostObjective::ThroughputWithEndurance { lambda } => {
                1.0 + lambda * stats.nvm_mb_per_op.max(0.0)
            }
            CostObjective::TailLatency { lambda } => match stats.p99_latency_ns {
                Some(p99) => 1.0 + lambda * (p99 as f64 / 1e6),
                None => 1.0,
            },
        };
        let cost = penalty / throughput.max(1e-9);
        let accepted = match self.current_cost {
            None => {
                self.current_cost = Some(cost);
                self.current = self.candidate;
                true
            }
            Some(cur) => {
                // Relative cost difference keeps Δ commensurate with the
                // temperature schedule regardless of absolute throughput.
                let delta = (cost - cur) / cur;
                let accept = delta <= 0.0 || {
                    let p = (-self.params.gamma * delta / self.temperature).exp();
                    self.rng.gen::<f64>() < p
                };
                if accept {
                    self.current = self.candidate;
                    self.current_cost = Some(cost);
                }
                accept
            }
        };
        if accepted {
            self.current_replacement = self.candidate_replacement;
        }
        self.history.push(EpochRecord {
            policy: self.candidate,
            throughput,
            accepted,
            temperature: self.temperature,
            replacement: self.candidate_replacement,
        });
        self.temperature = (self.temperature * self.params.cooling).max(self.params.final_temp);
        spitfire_obs::set_gauge("sa_temperature", self.temperature);
        self.candidate = self.propose();
        self.candidate
    }

    /// Propose a lattice neighbour of the current point: one knob moves one
    /// step. With the replacement axis enabled, one proposal in four flips
    /// the replacement policy instead (migration knobs held fixed so the
    /// two axes are never confounded within a single epoch).
    fn propose(&mut self) -> MigrationPolicy {
        if let Some(cur) = self.current_replacement {
            if self.rng.gen_range(0..4usize) == 0 {
                let others: Vec<PolicyConfig> = PolicyConfig::ALL
                    .into_iter()
                    .filter(|p| *p != cur)
                    .collect();
                self.candidate_replacement = Some(others[self.rng.gen_range(0..others.len())]);
                return self.current;
            }
            self.candidate_replacement = Some(cur);
        }
        let mut knobs = [
            self.current.dr,
            self.current.dw,
            self.current.nr,
            self.current.nw,
        ];
        // Try a few times in case a knob is pinned at a lattice edge.
        for _ in 0..8 {
            let k = self.rng.gen_range(0..4usize);
            let idx = nearest_lattice_index(knobs[k]);
            let up = self.rng.gen::<bool>();
            let new_idx = if up { idx + 1 } else { idx.wrapping_sub(1) };
            if new_idx < POLICY_LATTICE.len() {
                knobs[k] = POLICY_LATTICE[new_idx];
                break;
            }
        }
        let mut p = MigrationPolicy::new(knobs[0], knobs[1], knobs[2], knobs[3]);
        p.admission = self.current.admission;
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_lookup_snaps_to_nearest() {
        assert_eq!(nearest_lattice_index(0.0), 0);
        assert_eq!(nearest_lattice_index(1.0), 6);
        assert_eq!(nearest_lattice_index(0.011), 1);
        assert_eq!(nearest_lattice_index(0.3), 4);
    }

    #[test]
    fn first_observation_is_always_accepted() {
        let mut t = AnnealingTuner::new(MigrationPolicy::eager(), AnnealingParams::default(), 1);
        assert_eq!(t.candidate(), MigrationPolicy::eager());
        t.observe(1000.0);
        assert_eq!(t.history().len(), 1);
        assert!(t.history()[0].accepted);
        assert_eq!(t.current(), MigrationPolicy::eager());
    }

    #[test]
    fn proposals_stay_on_the_lattice() {
        let mut t = AnnealingTuner::new(MigrationPolicy::eager(), AnnealingParams::default(), 7);
        for i in 0..200 {
            let p = t.observe(1000.0 + i as f64);
            for knob in [p.dr, p.dw, p.nr, p.nw] {
                assert!(
                    POLICY_LATTICE.iter().any(|v| (v - knob).abs() < 1e-12),
                    "knob {knob} off-lattice"
                );
            }
        }
    }

    #[test]
    fn temperature_cools_to_floor() {
        let params = AnnealingParams::default();
        let mut t = AnnealingTuner::new(MigrationPolicy::eager(), params, 3);
        for _ in 0..500 {
            t.observe(1000.0);
        }
        assert!((t.temperature() - params.final_temp).abs() < 1e-12);
    }

    #[test]
    fn converges_to_better_policy_on_synthetic_cost() {
        // Synthetic workload: throughput peaks when all knobs are lazy
        // (0.01), mimicking the paper's YCSB-RO result.
        let score = |p: MigrationPolicy| {
            let pen = |x: f64| (x - 0.01).abs();
            10_000.0 / (1.0 + pen(p.dr) + pen(p.dw) + pen(p.nr) + pen(p.nw))
        };
        let mut tuner =
            AnnealingTuner::new(MigrationPolicy::eager(), AnnealingParams::default(), 42);
        let mut p = tuner.candidate();
        for _ in 0..400 {
            p = tuner.observe(score(p));
        }
        let final_p = tuner.current();
        let final_score = score(final_p);
        let start_score = score(MigrationPolicy::eager());
        assert!(
            final_score > start_score * 1.5,
            "tuner failed to improve: start {start_score}, final {final_score} ({final_p})"
        );
    }

    #[test]
    fn endurance_objective_penalizes_nvm_writes() {
        // Two synthetic policies: "fast but write-heavy" vs "slower but
        // write-light". The plain objective prefers the first; the
        // endurance-aware objective must prefer the second.
        let observe_both = |params: AnnealingParams| {
            let mut t = AnnealingTuner::new(MigrationPolicy::eager(), params, 5);
            // Establish the fast/write-heavy point as current.
            t.observe_with(1000.0, 2.0);
            // Cool so acceptance is strict.
            for _ in 0..200 {
                t.observe_with(1000.0, 2.0);
            }
            // Offer the slower/write-light point.
            let before = t.current();
            t.observe_with(900.0, 0.0);
            (before, t.history().last().copied().expect("history"))
        };
        let (_, plain) = observe_both(AnnealingParams::default());
        assert!(
            !plain.accepted,
            "plain objective must reject the 10% slower policy"
        );
        let (_, endurance) = observe_both(AnnealingParams {
            objective: CostObjective::ThroughputWithEndurance { lambda: 1.0 },
            ..AnnealingParams::default()
        });
        assert!(
            endurance.accepted,
            "endurance objective must accept 10% slower for 2 MB/op fewer writes"
        );
    }

    #[test]
    fn tail_latency_objective_penalizes_high_p99() {
        // Two synthetic policies: "fast but spiky" (high p99) vs "slower
        // but smooth". The plain objective prefers the first; the
        // tail-latency objective must prefer the second.
        let observe_both = |params: AnnealingParams| {
            let mut t = AnnealingTuner::new(MigrationPolicy::eager(), params, 5);
            let spiky = EpochStats {
                throughput: 1000.0,
                nvm_mb_per_op: 0.0,
                p99_latency_ns: Some(10_000_000), // 10 ms
            };
            // Establish the fast/spiky point as current and cool fully.
            for _ in 0..201 {
                t.observe_epoch(spiky);
            }
            // Offer the slower/smooth point.
            t.observe_epoch(EpochStats {
                throughput: 900.0,
                nvm_mb_per_op: 0.0,
                p99_latency_ns: Some(1_000_000), // 1 ms
            });
            t.history().last().copied().expect("history")
        };
        let plain = observe_both(AnnealingParams::default());
        assert!(
            !plain.accepted,
            "plain objective must reject the 10% slower policy"
        );
        let tail = observe_both(AnnealingParams {
            objective: CostObjective::TailLatency { lambda: 1.0 },
            ..AnnealingParams::default()
        });
        assert!(
            tail.accepted,
            "tail objective must accept 10% slower for 10x lower p99"
        );
    }

    #[test]
    fn replacement_axis_explores_and_converges() {
        // Synthetic workload where 2Q is strictly best: the tuner must
        // find and keep it.
        let score = |r: Option<PolicyConfig>| match r {
            Some(PolicyConfig::TwoQ) => 2000.0,
            _ => 1000.0,
        };
        let mut t = AnnealingTuner::new(MigrationPolicy::lazy(), AnnealingParams::default(), 9)
            .with_replacement_axis(PolicyConfig::Clock);
        assert_eq!(t.candidate_replacement(), Some(PolicyConfig::Clock));
        for _ in 0..300 {
            let r = t.candidate_replacement();
            t.observe(score(r));
        }
        assert_eq!(t.current_replacement(), Some(PolicyConfig::TwoQ));
        // The axis showed up in history, and every record carries it.
        assert!(t.history().iter().all(|r| r.replacement.is_some()));
        let distinct: std::collections::HashSet<_> = t
            .history()
            .iter()
            .filter_map(|r| r.replacement.map(|p| p.name()))
            .collect();
        assert!(distinct.len() >= 2, "axis never explored: {distinct:?}");
    }

    #[test]
    fn replacement_axis_off_by_default() {
        let mut t = AnnealingTuner::new(MigrationPolicy::lazy(), AnnealingParams::default(), 2);
        assert_eq!(t.candidate_replacement(), None);
        t.observe(1000.0);
        assert_eq!(t.history()[0].replacement, None);
    }

    #[test]
    fn late_epochs_reject_worse_policies() {
        let mut t = AnnealingTuner::new(MigrationPolicy::eager(), AnnealingParams::default(), 11);
        // Cool fully.
        for _ in 0..200 {
            t.observe(1000.0);
        }
        let cur = t.current();
        // Now hand back terrible throughput for whatever candidate is
        // offered; the current point must survive.
        for _ in 0..50 {
            t.observe(1.0);
        }
        assert_eq!(t.current(), cur);
        let tail = &t.history()[t.history().len() - 40..];
        assert!(tail.iter().filter(|r| r.accepted).count() <= 1);
    }
}
