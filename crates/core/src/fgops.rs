//! Buffer-manager operations on cache-line-grained and mini pages
//! (paper §2.1; evaluated in §6.5, Figures 11 and 12).
//!
//! These operations run *under the descriptor mutex*: granule loads are
//! sub-microsecond NVM→DRAM transfers, and holding the lock keeps the
//! resident/dirty masks consistent with the bytes without a second
//! synchronization layer. Whole-page guard I/O (the common case) never
//! takes this path.

use spitfire_device::AccessPattern;

use crate::descriptor::{CopyState, FrameRef, SharedPageDesc};
use crate::error::BufferError;
use crate::fgpage::{FinePage, MiniPage};
use crate::guard::{GuardKind, PageGuard};
use crate::manager::{with_page_buf, BufferManager};
use crate::types::{FrameId, MigrationPath, PageId};
use crate::Result;

impl BufferManager {
    fn granule(&self) -> usize {
        self.config()
            .fine_grained
            .expect("fine-grained ops require a granule")
    }

    /// Promote an NVM-resident page to a fine-grained (or mini) DRAM copy:
    /// no data is copied up front; granules load on demand. The NVM copy
    /// takes a *backing pin* so it cannot be evicted while the partial DRAM
    /// copy references it (the paper's pointer from the cache-line-grained
    /// page to the underlying NVM page, Figure 2a).
    pub(crate) fn promote_fine(
        &self,
        desc: &SharedPageDesc,
        nvm_frame: FrameId,
        nvm_dirty: bool,
    ) -> Result<PageGuard<'_>> {
        let mig_t = spitfire_obs::op_start();
        let pid = desc.pid;
        let fref = if let Some(mini) = &self.mini {
            let slot = match mini.try_alloc(pid) {
                Some(slot) => slot,
                None => {
                    let slab = self.alloc_frame(true)?;
                    mini.register_slab(slab, pid)
                }
            };
            FrameRef::Mini(Box::new(MiniPage::new(slot)))
        } else {
            let frame = self.alloc_frame(true)?;
            self.tier1_pool().set_owner(frame, pid);
            FrameRef::Fine(Box::new(FinePage::new(frame)))
        };
        let mut st = desc.state.lock();
        st.dram = Some(CopyState::Resident {
            frame: fref,
            pins: 1,
            dirty: false,
        });
        st.nvm = Some(CopyState::Resident {
            frame: FrameRef::Full(nvm_frame),
            pins: 1, // backing pin held by the fine-grained copy
            dirty: nvm_dirty,
        });
        desc.cond.notify_all();
        drop(st);
        // Promotion of the page *identity*; granule traffic is charged as
        // it happens.
        self.metrics.record_migration(MigrationPath::NvmToDram);
        spitfire_obs::record_op(spitfire_obs::Op::MigNvmToDram, mig_t, pid.0, "dram");
        Ok(PageGuard {
            bm: self,
            pid,
            kind: GuardKind::FineGrained,
            in_dram_slot: true,
            optimistic: false,
        })
    }

    /// Read through a fine-grained DRAM copy, loading missing granules from
    /// the backing NVM page.
    pub(crate) fn fg_read(&self, pid: PageId, offset: usize, buf: &mut [u8]) -> Result<()> {
        let desc = self.mapping_get(pid)?;
        let granule = self.granule();
        let mut st = desc.state.lock();
        let nvm_frame = nvm_backing_frame(&st.nvm, pid)?;
        let (first, last) = granule_range(offset, buf.len(), granule);

        match dram_fref_mut(&mut st.dram, pid)? {
            FrameRef::Fine(fp) => {
                let frame = fp.frame;
                for g in first..=last {
                    if !fp.resident.get(g) {
                        self.load_granule(nvm_frame, frame, g * granule, g * granule, granule)?;
                        fp.resident.set(g);
                    }
                }
                self.tier1_pool()
                    .read(frame, offset, buf, AccessPattern::Random)?;
                self.tier1_pool().touch(frame);
            }
            FrameRef::Mini(_) => {
                self.mini_access(&mut st.dram, pid, nvm_frame, offset, MiniIo::Read(buf))?;
            }
            FrameRef::Full(_) => unreachable!("fine-grained guard on a full frame"),
        }
        Ok(())
    }

    /// Write through a fine-grained DRAM copy. Granules fully covered by
    /// the write are not loaded first; partially covered granules are.
    pub(crate) fn fg_write(&self, pid: PageId, offset: usize, data: &[u8]) -> Result<()> {
        let desc = self.mapping_get(pid)?;
        let granule = self.granule();
        let mut st = desc.state.lock();
        let nvm_frame = nvm_backing_frame(&st.nvm, pid)?;
        let (first, last) = granule_range(offset, data.len(), granule);

        match dram_fref_mut(&mut st.dram, pid)? {
            FrameRef::Fine(fp) => {
                let frame = fp.frame;
                for g in first..=last {
                    let fully_covered =
                        offset <= g * granule && offset + data.len() >= (g + 1) * granule;
                    if !fp.resident.get(g) && !fully_covered {
                        self.load_granule(nvm_frame, frame, g * granule, g * granule, granule)?;
                    }
                    fp.resident.set(g);
                    fp.dirty.set(g);
                }
                self.tier1_pool()
                    .write(frame, offset, data, AccessPattern::Random)?;
                self.tier1_pool().touch(frame);
            }
            FrameRef::Mini(_) => {
                self.mini_access(&mut st.dram, pid, nvm_frame, offset, MiniIo::Write(data))?;
            }
            FrameRef::Full(_) => unreachable!("fine-grained guard on a full frame"),
        }
        if let Some(CopyState::Resident { dirty, .. }) = &mut st.dram {
            *dirty = true;
        }
        Ok(())
    }

    /// Serve a read or write against a mini page, promoting it to a fine
    /// page on slot overflow (paper §2.1: "when the mini page overflows,
    /// HyMem transparently promotes it to a full page").
    fn mini_access(
        &self,
        dram: &mut Option<CopyState>,
        pid: PageId,
        nvm_frame: FrameId,
        offset: usize,
        mut io: MiniIo<'_>,
    ) -> Result<()> {
        let granule = self.granule();
        let len = io.len();
        let (first, last) = granule_range(offset, len, granule);
        let mini = self.mini.as_ref().expect("mini slabs exist");

        // Ensure every touched granule has a slot, promoting on overflow.
        for g in first..=last {
            let overflowed = mini_page_mut(dram, pid)?.insert(g as u16).is_none();
            if overflowed {
                self.promote_mini_to_fine(dram, pid)?;
                return self.fine_access_after_promotion(dram, nvm_frame, offset, io);
            }
        }

        // All granules have slots; load the ones not yet resident and
        // perform the I/O slot by slot.
        let slot_snapshot = mini_page_mut(dram, pid)?.slot;
        for g in first..=last {
            let (j, needs_load) = {
                let mp = mini_page_mut(dram, pid)?;
                let j = mp.find(g as u16).expect("slot ensured above");
                (j, !mp.loaded(j))
            };
            let slab_off = mini.content_offset(slot_snapshot, j, granule);
            let g_start = g * granule;
            let g_end = g_start + granule;
            let io_start = offset.max(g_start);
            let io_end = (offset + len).min(g_end);
            let fully_covered =
                matches!(io, MiniIo::Write(_)) && io_start == g_start && io_end == g_end;
            if needs_load && !fully_covered {
                self.load_granule(nvm_frame, slot_snapshot.slab, g_start, slab_off, granule)?;
            }
            {
                let mp = mini_page_mut(dram, pid)?;
                mp.mark_loaded(j);
            }
            let within = io_start - g_start;
            match &mut io {
                MiniIo::Read(buf) => {
                    let dst = &mut buf[io_start - offset..io_end - offset];
                    self.tier1_pool().read(
                        slot_snapshot.slab,
                        slab_off + within,
                        dst,
                        AccessPattern::Random,
                    )?;
                }
                MiniIo::Write(data) => {
                    let src = &data[io_start - offset..io_end - offset];
                    self.tier1_pool().write(
                        slot_snapshot.slab,
                        slab_off + within,
                        src,
                        AccessPattern::Random,
                    )?;
                    let mp = mini_page_mut(dram, pid)?;
                    mp.mark_dirty(j);
                }
            }
        }
        self.tier1_pool().touch(slot_snapshot.slab);
        Ok(())
    }

    /// Convert the mini copy into a fine page (allocating a full frame and
    /// copying loaded granules across).
    fn promote_mini_to_fine(&self, dram: &mut Option<CopyState>, pid: PageId) -> Result<()> {
        let granule = self.granule();
        let mini = self.mini.as_ref().expect("mini slabs exist");
        let new_frame = self.alloc_frame(true)?;
        let (pins, was_dirty, mp) = match dram.take() {
            Some(CopyState::Resident {
                frame: FrameRef::Mini(mp),
                pins,
                dirty,
            }) => (pins, dirty, mp),
            other => {
                *dram = other;
                self.tier1_pool().free(new_frame);
                return Err(BufferError::UnknownPage(pid));
            }
        };
        let mut fp = FinePage::new(new_frame);
        for (j, gid) in mp.occupied() {
            let gid = gid as usize;
            if !mp.loaded(j) {
                continue;
            }
            let src = mini.content_offset(mp.slot, j, granule);
            self.copy_within_tier1(mp.slot.slab, src, new_frame, gid * granule, granule)?;
            fp.resident.set(gid);
            if mp.is_dirty(j) {
                fp.dirty.set(gid);
            }
        }
        if mini.free_slot(mp.slot) {
            self.tier1_pool().free(mp.slot.slab);
        }
        self.tier1_pool().set_owner(new_frame, pid);
        *dram = Some(CopyState::Resident {
            frame: FrameRef::Fine(Box::new(fp)),
            pins,
            dirty: was_dirty,
        });
        Ok(())
    }

    /// Finish an access that started on a mini page and overflowed into a
    /// fine page mid-operation.
    fn fine_access_after_promotion(
        &self,
        dram: &mut Option<CopyState>,
        nvm_frame: FrameId,
        offset: usize,
        mut io: MiniIo<'_>,
    ) -> Result<()> {
        let granule = self.granule();
        let len = io.len();
        let (first, last) = granule_range(offset, len, granule);
        let Some(CopyState::Resident {
            frame: FrameRef::Fine(fp),
            dirty,
            ..
        }) = dram
        else {
            unreachable!("promotion installs a fine page");
        };
        let frame = fp.frame;
        for g in first..=last {
            let fully_covered = matches!(io, MiniIo::Write(_))
                && offset <= g * granule
                && offset + len >= (g + 1) * granule;
            if !fp.resident.get(g) && !fully_covered {
                self.load_granule(nvm_frame, frame, g * granule, g * granule, granule)?;
            }
            fp.resident.set(g);
            if matches!(io, MiniIo::Write(_)) {
                fp.dirty.set(g);
            }
        }
        match &mut io {
            MiniIo::Read(buf) => {
                self.tier1_pool()
                    .read(frame, offset, buf, AccessPattern::Random)?;
            }
            MiniIo::Write(data) => {
                self.tier1_pool()
                    .write(frame, offset, data, AccessPattern::Random)?;
                *dirty = true;
            }
        }
        self.tier1_pool().touch(frame);
        Ok(())
    }

    /// Copy one granule NVM→DRAM (the on-demand load of Figure 2a).
    fn load_granule(
        &self,
        nvm_frame: FrameId,
        dram_frame: FrameId,
        nvm_off: usize,
        dram_off: usize,
        granule: usize,
    ) -> Result<()> {
        with_page_buf(granule, |buf| -> Result<()> {
            self.nvm_pool()
                .read(nvm_frame, nvm_off, buf, AccessPattern::Random)?;
            self.tier1_pool()
                .write(dram_frame, dram_off, buf, AccessPattern::Random)?;
            Ok(())
        })
    }

    fn copy_within_tier1(
        &self,
        src_frame: FrameId,
        src_off: usize,
        dst_frame: FrameId,
        dst_off: usize,
        len: usize,
    ) -> Result<()> {
        with_page_buf(len, |buf| -> Result<()> {
            self.tier1_pool()
                .read(src_frame, src_off, buf, AccessPattern::Random)?;
            self.tier1_pool()
                .write(dst_frame, dst_off, buf, AccessPattern::Random)?;
            Ok(())
        })
    }

    /// Write the dirty granules of an evicted fine/mini copy back to the
    /// backing NVM frame (called by the eviction path with both copies
    /// marked `Busy`).
    pub(crate) fn write_back_granules(
        &self,
        _desc: &SharedPageDesc,
        fref: &FrameRef,
        nvm_frame: FrameId,
    ) {
        let granule = self.granule();
        let res: Result<()> = (|| {
            match fref {
                FrameRef::Fine(fp) => {
                    for g in fp.dirty.iter() {
                        with_page_buf(granule, |buf| -> Result<()> {
                            self.tier1_pool().read(
                                fp.frame,
                                g * granule,
                                buf,
                                AccessPattern::Random,
                            )?;
                            let pool = self.nvm_pool();
                            pool.write(nvm_frame, g * granule, buf, AccessPattern::Random)?;
                            pool.persist(nvm_frame, g * granule, granule)?;
                            Ok(())
                        })?;
                    }
                }
                FrameRef::Mini(mp) => {
                    let mini = self.mini.as_ref().expect("mini slabs exist");
                    for (j, gid) in mp.occupied() {
                        if !mp.is_dirty(j) {
                            continue;
                        }
                        let gid = gid as usize;
                        let src = mini.content_offset(mp.slot, j, granule);
                        with_page_buf(granule, |buf| -> Result<()> {
                            self.tier1_pool().read(
                                mp.slot.slab,
                                src,
                                buf,
                                AccessPattern::Random,
                            )?;
                            let pool = self.nvm_pool();
                            pool.write(nvm_frame, gid * granule, buf, AccessPattern::Random)?;
                            pool.persist(nvm_frame, gid * granule, granule)?;
                            Ok(())
                        })?;
                    }
                }
                FrameRef::Full(_) => unreachable!("granule write-back of a full frame"),
            }
            Ok(())
        })();
        debug_assert!(res.is_ok(), "granule write-back failed: {res:?}");
    }

    fn mapping_get(&self, pid: PageId) -> Result<std::sync::Arc<SharedPageDesc>> {
        self.mapping
            .get(&pid.0)
            .ok_or(BufferError::UnknownPage(pid))
    }
}

/// The direction and buffer of a mini-page access.
enum MiniIo<'a> {
    Read(&'a mut [u8]),
    Write(&'a [u8]),
}

impl MiniIo<'_> {
    fn len(&self) -> usize {
        match self {
            MiniIo::Read(b) => b.len(),
            MiniIo::Write(d) => d.len(),
        }
    }
}

fn granule_range(offset: usize, len: usize, granule: usize) -> (usize, usize) {
    let first = offset / granule;
    let last = if len == 0 {
        first
    } else {
        (offset + len - 1) / granule
    };
    (first, last)
}

fn nvm_backing_frame(nvm: &Option<CopyState>, pid: PageId) -> Result<FrameId> {
    match nvm {
        Some(CopyState::Resident { frame, .. }) => Ok(frame.frame()),
        _ => Err(BufferError::UnknownPage(pid)),
    }
}

fn dram_fref_mut(dram: &mut Option<CopyState>, pid: PageId) -> Result<&mut FrameRef> {
    match dram {
        Some(CopyState::Resident { frame, .. }) => Ok(frame),
        _ => Err(BufferError::UnknownPage(pid)),
    }
}

fn mini_page_mut(dram: &mut Option<CopyState>, pid: PageId) -> Result<&mut MiniPage> {
    match dram {
        Some(CopyState::Resident {
            frame: FrameRef::Mini(mp),
            ..
        }) => Ok(mp),
        _ => Err(BufferError::UnknownPage(pid)),
    }
}
