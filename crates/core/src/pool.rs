//! Per-tier buffer pools: frame allocation, pluggable replacement state,
//! and device-backed frame I/O.

use spitfire_sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use spitfire_device::{
    AccessPattern, DramDevice, FaultInjector, MemoryModeDevice, NvmDevice, PersistenceTracking,
    TimeScale,
};
use spitfire_sync::AtomicBitmap;

use crate::io::retry_device_io;
use crate::metrics::BufferMetrics;
use crate::replacement::{PolicyConfig, ReplacementPolicy};
use crate::types::{FrameId, PageId};
use crate::Result;

/// Per-frame header stored on NVM frames: magic (8 B) + page id (8 B),
/// padded to one cache line. Recovery scans these headers to rebuild the
/// mapping table (paper §5.2, Recovery).
pub(crate) const NVM_FRAME_HEADER: usize = 64;
const NVM_HEADER_MAGIC: u64 = 0x5350_4954_4649_5245; // "SPITFIRE"

/// Sentinel for "frame owns no page".
const NO_OWNER: u64 = u64::MAX;

/// The device backing one pool tier.
pub(crate) enum PoolDevice {
    /// Plain DRAM (tier 1).
    Dram(DramDevice),
    /// DRAM-cached NVM in memory mode (tier 1, Figure 5).
    MemoryMode(MemoryModeDevice),
    /// App-direct NVM (tier 2).
    Nvm(NvmDevice),
}

impl PoolDevice {
    fn read(
        &self,
        offset: usize,
        buf: &mut [u8],
        pattern: AccessPattern,
    ) -> spitfire_device::Result<()> {
        match self {
            PoolDevice::Dram(d) => d.read(offset, buf, pattern),
            PoolDevice::MemoryMode(d) => d.read(offset, buf, pattern),
            PoolDevice::Nvm(d) => d.read(offset, buf, pattern),
        }
    }

    fn write(
        &self,
        offset: usize,
        data: &[u8],
        pattern: AccessPattern,
    ) -> spitfire_device::Result<()> {
        match self {
            PoolDevice::Dram(d) => d.write(offset, data, pattern),
            PoolDevice::MemoryMode(d) => d.write(offset, data, pattern),
            PoolDevice::Nvm(d) => d.write(offset, data, pattern),
        }
    }

    fn persist(&self, offset: usize, len: usize) -> spitfire_device::Result<()> {
        if let PoolDevice::Nvm(d) = self {
            d.persist(offset, len)?;
        }
        Ok(())
    }
}

/// One tier's buffer pool.
///
/// The pool owns frame allocation (a lock-free bitmap), a pluggable
/// [`ReplacementPolicy`] (reference-tracking + victim selection), the
/// frame→page ownership table, and the device I/O for frame contents. Pin
/// counts and dirty bits live in the shared page descriptors (paper
/// Figure 4), not here.
pub(crate) struct Pool {
    device: PoolDevice,
    page_size: usize,
    /// Byte stride between frames (page size plus the NVM header, if any).
    stride: usize,
    /// Byte offset of page content within a frame.
    header: usize,
    n_frames: usize,
    occupied: AtomicBitmap,
    /// Replacement policy: hears about every allocation (`admit`), free
    /// (`evict`), and buffer hit (`touch`), and names eviction victims.
    policy: Box<dyn ReplacementPolicy>,
    owners: Vec<AtomicU64>,
    /// Cheap O(1) free-frame count (the bitmap is the source of truth;
    /// this trails it by at most the in-flight alloc/free window). Kept for
    /// the watermark checks on the fetch path and in maintenance workers,
    /// where `count_ones` over the bitmap would be too slow per call.
    free_count: AtomicUsize,
    /// Shared with the owning buffer manager so the retry loop in the
    /// frame-I/O paths can account retries and fatal escalations.
    metrics: Arc<BufferMetrics>,
}

impl Pool {
    /// A DRAM pool of `capacity` bytes.
    pub(crate) fn dram(
        capacity: usize,
        page_size: usize,
        scale: TimeScale,
        policy: PolicyConfig,
        metrics: Arc<BufferMetrics>,
    ) -> Self {
        let n_frames = capacity / page_size;
        Self::new(
            PoolDevice::Dram(DramDevice::new(capacity, scale)),
            page_size,
            0,
            n_frames,
            policy,
            metrics,
        )
    }

    /// A memory-mode pool: `nvm_capacity` bytes of NVM fronted by a
    /// `dram_cache` byte DRAM cache.
    pub(crate) fn memory_mode(
        nvm_capacity: usize,
        dram_cache: usize,
        page_size: usize,
        scale: TimeScale,
        policy: PolicyConfig,
        metrics: Arc<BufferMetrics>,
    ) -> Self {
        let n_frames = nvm_capacity / page_size;
        Self::new(
            PoolDevice::MemoryMode(MemoryModeDevice::new(nvm_capacity, dram_cache, scale)),
            page_size,
            0,
            n_frames,
            policy,
            metrics,
        )
    }

    /// An NVM pool of `capacity` bytes (headers carved out of the same
    /// budget).
    pub(crate) fn nvm(
        capacity: usize,
        page_size: usize,
        scale: TimeScale,
        tracking: PersistenceTracking,
        policy: PolicyConfig,
        metrics: Arc<BufferMetrics>,
    ) -> Self {
        let stride = page_size + NVM_FRAME_HEADER;
        let n_frames = capacity / stride;
        // Round the arena up so the last frame fits completely.
        let arena = n_frames * stride;
        Self::new(
            PoolDevice::Nvm(NvmDevice::new(arena.max(stride), scale, tracking)),
            page_size,
            NVM_FRAME_HEADER,
            n_frames.max(if capacity >= page_size { 1 } else { 0 }),
            policy,
            metrics,
        )
    }

    fn new(
        device: PoolDevice,
        page_size: usize,
        header: usize,
        n_frames: usize,
        policy: PolicyConfig,
        metrics: Arc<BufferMetrics>,
    ) -> Self {
        Pool {
            device,
            page_size,
            stride: page_size + header,
            header,
            n_frames,
            occupied: AtomicBitmap::new(n_frames),
            policy: policy.build(n_frames),
            owners: (0..n_frames).map(|_| AtomicU64::new(NO_OWNER)).collect(),
            free_count: AtomicUsize::new(n_frames),
            metrics,
        }
    }

    /// Attach (or detach) a chaos fault injector on this pool's device.
    /// Memory-mode devices have no injection hooks yet and ignore the call.
    pub(crate) fn set_fault_injector(&self, injector: Option<Arc<FaultInjector>>) {
        match &self.device {
            PoolDevice::Dram(d) => d.set_fault_injector(injector),
            PoolDevice::Nvm(d) => d.set_fault_injector(injector),
            PoolDevice::MemoryMode(_) => {}
        }
    }

    /// Number of frames in this pool.
    pub(crate) fn n_frames(&self) -> usize {
        self.n_frames
    }

    /// Page size served by this pool.
    #[allow(dead_code)]
    pub(crate) fn page_size(&self) -> usize {
        self.page_size
    }

    /// Name of the replacement policy this pool runs.
    pub(crate) fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Number of occupied frames (snapshot).
    pub(crate) fn occupied_frames(&self) -> usize {
        self.occupied.count_ones()
    }

    /// Number of free frames, from the O(1) counter (may trail the bitmap
    /// by concurrent in-flight transitions; fine for watermark decisions).
    pub(crate) fn free_frames(&self) -> usize {
        // relaxed: advisory watermark reading; the bitmap is the source
        // of truth and this counter may trail it (see the doc comment).
        self.free_count.load(Ordering::Relaxed)
    }

    /// Direct handle to the underlying NVM device (for recovery scans and
    /// WAL-region sharing); `None` for non-NVM pools.
    pub(crate) fn nvm_device(&self) -> Option<&NvmDevice> {
        match &self.device {
            PoolDevice::Nvm(d) => Some(d),
            _ => None,
        }
    }

    /// Memory-mode cache statistics, if this pool runs in memory mode.
    pub(crate) fn memory_mode_device(&self) -> Option<&MemoryModeDevice> {
        match &self.device {
            PoolDevice::MemoryMode(d) => Some(d),
            _ => None,
        }
    }

    /// Device stats handle for this pool's device.
    pub(crate) fn device_stats(&self) -> std::sync::Arc<spitfire_device::DeviceStats> {
        match &self.device {
            PoolDevice::Dram(d) => d.stats(),
            PoolDevice::MemoryMode(d) => d.stats(),
            PoolDevice::Nvm(d) => d.stats(),
        }
    }

    /// Change the emulated-delay scale of this pool's device.
    pub(crate) fn set_time_scale(&self, scale: TimeScale) {
        match &self.device {
            PoolDevice::Dram(d) => d.set_time_scale(scale),
            PoolDevice::MemoryMode(d) => d.set_time_scale(scale),
            PoolDevice::Nvm(d) => d.set_time_scale(scale),
        }
    }

    /// Try to claim a free frame without evicting. The claimed frame is
    /// admitted to the replacement policy immediately — mini-page slab
    /// frames never receive an owner, so admission cannot wait for
    /// [`Pool::set_owner`].
    pub(crate) fn try_alloc(&self) -> Option<FrameId> {
        let hint = self.policy.alloc_hint();
        let bit = self
            .occupied
            .acquire_first_clear(hint % self.n_frames.max(1))?;
        // relaxed: the bitmap's acquiring RMW is the synchronizing claim;
        // the counter is an advisory mirror for watermark checks.
        self.free_count.fetch_sub(1, Ordering::Relaxed);
        let frame = FrameId(bit as u32);
        self.policy.admit(frame);
        Some(frame)
    }

    /// Record `frame` as holding `pid` (the policy already admitted it in
    /// [`Pool::try_alloc`]).
    pub(crate) fn set_owner(&self, frame: FrameId, pid: PageId) {
        self.owners[frame.0 as usize].store(pid.0, Ordering::Release);
    }

    /// The page currently owning `frame`, if any.
    pub(crate) fn owner(&self, frame: FrameId) -> Option<PageId> {
        let v = self.owners[frame.0 as usize].load(Ordering::Acquire);
        (v != NO_OWNER).then_some(PageId(v))
    }

    /// Release `frame` back to the free pool.
    pub(crate) fn free(&self, frame: FrameId) {
        let i = frame.0 as usize;
        self.owners[i].store(NO_OWNER, Ordering::Release);
        self.policy.evict(frame);
        if self.occupied.clear(i) {
            // relaxed: advisory mirror of the bitmap (see `try_alloc`).
            self.free_count.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Mark `frame` recently used. Hit-path hot: delegates to the
    /// policy's lock-free `touch`.
    pub(crate) fn touch(&self, frame: FrameId) {
        self.policy.touch(frame);
    }

    /// Ask the replacement policy for the next eviction candidate. The
    /// caller re-validates (owner, pins, shadow ops) and simply asks again
    /// if the eviction fails.
    pub(crate) fn next_victim(&self) -> Option<FrameId> {
        self.policy.victim(&self.occupied)
    }

    /// Batched victim selection for maintenance workers: up to `max`
    /// candidates in one policy call (queue-based policies lock once per
    /// batch instead of once per frame).
    pub(crate) fn next_victims(&self, max: usize, out: &mut Vec<FrameId>) {
        self.policy.victims(&self.occupied, max, out);
    }

    fn content_base(&self, frame: FrameId) -> usize {
        frame.0 as usize * self.stride + self.header
    }

    /// Read page content bytes from a frame. Transient device faults are
    /// retried (see [`crate::io`]); fatal ones surface as
    /// [`crate::BufferError::FatalIo`].
    pub(crate) fn read(
        &self,
        frame: FrameId,
        offset: usize,
        buf: &mut [u8],
        pattern: AccessPattern,
    ) -> Result<()> {
        debug_assert!(offset + buf.len() <= self.page_size);
        let base = self.content_base(frame) + offset;
        retry_device_io(&self.metrics, "pool read", || {
            self.device.read(base, buf, pattern)
        })
    }

    /// Write page content bytes into a frame (volatile; call
    /// [`Pool::persist`] to flush on NVM).
    pub(crate) fn write(
        &self,
        frame: FrameId,
        offset: usize,
        data: &[u8],
        pattern: AccessPattern,
    ) -> Result<()> {
        debug_assert!(offset + data.len() <= self.page_size);
        let base = self.content_base(frame) + offset;
        retry_device_io(&self.metrics, "pool write", || {
            self.device.write(base, data, pattern)
        })
    }

    /// Flush a content range of `frame` to the persistence domain (no-op on
    /// volatile tiers).
    pub(crate) fn persist(&self, frame: FrameId, offset: usize, len: usize) -> Result<()> {
        let base = self.content_base(frame) + offset;
        retry_device_io(&self.metrics, "pool persist", || {
            self.device.persist(base, len)
        })
    }

    /// Write and persist the NVM frame header identifying `pid` (no-op on
    /// non-NVM pools).
    pub(crate) fn write_frame_header(&self, frame: FrameId, pid: PageId) -> Result<()> {
        if self.header == 0 {
            return Ok(());
        }
        let base = frame.0 as usize * self.stride;
        let mut hdr = [0u8; 16];
        hdr[..8].copy_from_slice(&NVM_HEADER_MAGIC.to_le_bytes());
        hdr[8..].copy_from_slice(&pid.0.to_le_bytes());
        retry_device_io(&self.metrics, "frame header write", || {
            self.device.write(base, &hdr, AccessPattern::Random)?;
            self.device.persist(base, 16)
        })
    }

    /// Clear and persist the NVM frame header (frame no longer holds a
    /// valid page).
    pub(crate) fn clear_frame_header(&self, frame: FrameId) -> Result<()> {
        if self.header == 0 {
            return Ok(());
        }
        let base = frame.0 as usize * self.stride;
        retry_device_io(&self.metrics, "frame header clear", || {
            self.device.write(base, &[0u8; 16], AccessPattern::Random)?;
            self.device.persist(base, 16)
        })
    }

    /// Scan NVM frame headers, returning `(frame, page)` for every valid
    /// header. Used by recovery (paper §5.2) to rebuild the mapping table
    /// after a crash. Returns an empty list on non-NVM pools.
    pub(crate) fn scan_frame_headers(&self) -> Vec<(FrameId, PageId)> {
        if self.header == 0 {
            return Vec::new();
        }
        let mut found = Vec::new();
        for i in 0..self.n_frames {
            let base = i * self.stride;
            let mut hdr = [0u8; 16];
            // Retried: a transient fault here must not silently skip a
            // valid header — that would lose the page during recovery.
            if crate::io::retry_device_io(&self.metrics, "frame header scan", || {
                self.device.read(base, &mut hdr, AccessPattern::Sequential)
            })
            .is_err()
            {
                continue;
            }
            let magic = u64::from_le_bytes(hdr[..8].try_into().expect("8-byte slice"));
            if magic == NVM_HEADER_MAGIC {
                let pid = u64::from_le_bytes(hdr[8..].try_into().expect("8-byte slice"));
                found.push((FrameId(i as u32), PageId(pid)));
            }
        }
        found
    }

    /// Rebuild in-memory ownership after recovery: mark `frame` occupied by
    /// `pid` without touching the device.
    pub(crate) fn adopt(&self, frame: FrameId, pid: PageId) {
        let i = frame.0 as usize;
        if !self.occupied.set(i) {
            // relaxed: recovery runs single-threaded before the pool is
            // shared; the counter mirrors the bitmap (see `try_alloc`).
            self.free_count.fetch_sub(1, Ordering::Relaxed);
        }
        self.owners[i].store(pid.0, Ordering::Release);
        self.policy.admit(frame);
    }
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("frames", &self.n_frames)
            .field("occupied", &self.occupied_frames())
            .field("page_size", &self.page_size)
            .field("policy", &self.policy_name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram_pool(frames: usize) -> Pool {
        dram_pool_with(frames, PolicyConfig::Clock)
    }

    fn dram_pool_with(frames: usize, policy: PolicyConfig) -> Pool {
        Pool::dram(
            frames * 4096,
            4096,
            TimeScale::ZERO,
            policy,
            Arc::new(BufferMetrics::new()),
        )
    }

    #[test]
    fn alloc_until_full_then_none() {
        let p = dram_pool(4);
        let mut got = Vec::new();
        while let Some(f) = p.try_alloc() {
            got.push(f.0);
        }
        assert_eq!(got.len(), 4);
        assert_eq!(p.occupied_frames(), 4);
        assert!(p.try_alloc().is_none());
    }

    #[test]
    fn owner_bookkeeping() {
        let p = dram_pool(2);
        let f = p.try_alloc().unwrap();
        assert_eq!(p.owner(f), None);
        p.set_owner(f, PageId(42));
        assert_eq!(p.owner(f), Some(PageId(42)));
        p.free(f);
        assert_eq!(p.owner(f), None);
        assert_eq!(p.occupied_frames(), 0);
    }

    #[test]
    fn clock_gives_second_chances() {
        let p = dram_pool(3);
        let frames: Vec<FrameId> = (0..3).map(|_| p.try_alloc().unwrap()).collect();
        for (i, f) in frames.iter().enumerate() {
            p.set_owner(*f, PageId(i as u64));
        }
        // All frames have their reference bit set (admission); the first
        // sweep clears them, then the second finds a victim.
        let v = p.next_victim().expect("a victim after ref bits cleared");
        assert!(frames.contains(&v));
        // Touch a frame: it survives the next victim search longer.
        p.touch(frames[1]);
        let v2 = p.next_victim().expect("victim");
        assert_ne!(v2, frames[1]);
    }

    #[test]
    fn clock_skips_unoccupied() {
        let p = dram_pool(4);
        let a = p.try_alloc().unwrap();
        let b = p.try_alloc().unwrap();
        p.free(a);
        // Only b is occupied; after its second chance it must be the victim.
        let v = p.next_victim().unwrap();
        assert_eq!(v, b);
    }

    #[test]
    fn empty_pool_has_no_victims() {
        let p = dram_pool(2);
        assert!(p.next_victim().is_none());
        let zero = Pool::dram(
            0,
            4096,
            TimeScale::ZERO,
            PolicyConfig::Clock,
            Arc::new(BufferMetrics::new()),
        );
        assert!(zero.next_victim().is_none());
        assert!(zero.try_alloc().is_none());
    }

    #[test]
    fn non_clock_policies_track_unowned_frames() {
        // Mini-page slab frames are allocated but never set_owner'd; the
        // policy must still name them as victims or slabs pin the pool
        // full forever.
        for policy in [PolicyConfig::Sieve, PolicyConfig::TwoQ] {
            let p = dram_pool_with(4, policy);
            let frames: Vec<FrameId> = (0..4).map(|_| p.try_alloc().unwrap()).collect();
            // No owners set at all. Every frame must eventually be named.
            let mut named = std::collections::HashSet::new();
            for _ in 0..16 {
                if let Some(v) = p.next_victim() {
                    named.insert(v);
                }
            }
            for f in &frames {
                assert!(named.contains(f), "{policy}: frame {f:?} never named");
            }
        }
    }

    #[test]
    fn batched_victims_cover_the_pool() {
        for policy in [PolicyConfig::Clock, PolicyConfig::Sieve, PolicyConfig::TwoQ] {
            let p = dram_pool_with(4, policy);
            for _ in 0..4 {
                p.try_alloc().unwrap();
            }
            let mut out = Vec::new();
            p.next_victims(3, &mut out);
            assert!(!out.is_empty(), "{policy}: no batched victims");
            assert!(out.len() <= 3, "{policy}: batch over max");
        }
    }

    #[test]
    fn frame_io_round_trips() {
        let p = dram_pool(2);
        let f = p.try_alloc().unwrap();
        p.write(f, 100, b"content", AccessPattern::Random).unwrap();
        let mut buf = [0u8; 7];
        p.read(f, 100, &mut buf, AccessPattern::Random).unwrap();
        assert_eq!(&buf, b"content");
    }

    #[test]
    fn nvm_headers_scan_and_clear() {
        let p = Pool::nvm(
            4 * (4096 + NVM_FRAME_HEADER),
            4096,
            TimeScale::ZERO,
            PersistenceTracking::Counters,
            PolicyConfig::Clock,
            Arc::new(BufferMetrics::new()),
        );
        assert_eq!(p.n_frames(), 4);
        let f0 = p.try_alloc().unwrap();
        let f1 = p.try_alloc().unwrap();
        p.write_frame_header(f0, PageId(7)).unwrap();
        p.write_frame_header(f1, PageId(9)).unwrap();
        let mut scanned = p.scan_frame_headers();
        scanned.sort_by_key(|(_, pid)| *pid);
        assert_eq!(scanned, vec![(f0, PageId(7)), (f1, PageId(9))]);
        p.clear_frame_header(f0).unwrap();
        assert_eq!(p.scan_frame_headers(), vec![(f1, PageId(9))]);
    }

    #[test]
    fn nvm_header_survives_crash_when_persisted() {
        let p = Pool::nvm(
            2 * (4096 + NVM_FRAME_HEADER),
            4096,
            TimeScale::ZERO,
            PersistenceTracking::Full,
            PolicyConfig::Clock,
            Arc::new(BufferMetrics::new()),
        );
        let f = p.try_alloc().unwrap();
        p.write_frame_header(f, PageId(3)).unwrap();
        p.write(f, 0, b"page-content", AccessPattern::Random)
            .unwrap();
        p.persist(f, 0, 12).unwrap();
        p.nvm_device().unwrap().simulate_crash();
        assert_eq!(p.scan_frame_headers(), vec![(f, PageId(3))]);
        let mut buf = [0u8; 12];
        p.read(f, 0, &mut buf, AccessPattern::Random).unwrap();
        assert_eq!(&buf, b"page-content");
    }

    #[test]
    fn free_count_tracks_alloc_free_adopt() {
        let p = dram_pool(4);
        assert_eq!(p.free_frames(), 4);
        let a = p.try_alloc().unwrap();
        let b = p.try_alloc().unwrap();
        assert_eq!(p.free_frames(), 2);
        p.free(a);
        assert_eq!(p.free_frames(), 3);
        // Double-free does not over-count.
        p.free(a);
        assert_eq!(p.free_frames(), 3);
        p.adopt(b, PageId(9)); // already occupied: no change
        assert_eq!(p.free_frames(), 3);
        p.adopt(FrameId(3), PageId(10));
        assert_eq!(p.free_frames(), 2);
    }

    #[test]
    fn adopt_restores_ownership() {
        let p = Pool::nvm(
            2 * (4096 + NVM_FRAME_HEADER),
            4096,
            TimeScale::ZERO,
            PersistenceTracking::Counters,
            PolicyConfig::Clock,
            Arc::new(BufferMetrics::new()),
        );
        p.adopt(FrameId(1), PageId(55));
        assert_eq!(p.owner(FrameId(1)), Some(PageId(55)));
        assert_eq!(p.occupied_frames(), 1);
        // The adopted frame is not handed out by the allocator.
        let f = p.try_alloc().unwrap();
        assert_ne!(f, FrameId(1));
    }
}
