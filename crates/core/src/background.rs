//! Background maintenance service: watermark-driven pre-eviction and
//! batched write-back, off the fetch miss path.
//!
//! A fetch miss needs a free frame. Without this service the miss pays
//! for victim selection, dirty write-back, and NVM→SSD migration inline —
//! the foreground stalls Spitfire's migration machinery creates under
//! write-heavy workloads. The [`Maintenance`] service keeps each pool's
//! free list above a configurable low watermark by evicting CLOCK victims
//! ahead of demand and writing dirty NVM pages back in batches (one fsync
//! per batch instead of one per page), so the common miss is a single
//! bitmap pop. When workers fall behind, `fetch` transparently falls back
//! to the old inline eviction loop and bumps the `backpressure_fallbacks`
//! counter.
//!
//! Two driving modes share the same cycle implementation
//! (`BufferManager::maintenance_cycle`):
//!
//! * **threaded** — [`Maintenance::start`] spawns the configured number of
//!   worker threads, woken by the allocation path whenever a free list
//!   dips below its low watermark (and periodically as a fallback);
//! * **manual** — [`Maintenance::tick`] runs one cycle inline on the
//!   caller's thread. The chaos explorer uses this mode: no free-running
//!   threads means fault draws and crash schedules stay deterministic.
//!
//! Around a (simulated) crash, [`Maintenance::pause_for_crash`] parks
//! every worker and returns only once none is mid-cycle, so no
//! maintenance I/O can race the crash; [`Maintenance::resume`] restarts
//! them after recovery. Cycles additionally snapshot the manager's crash
//! epoch and abort when it changes under them.

use spitfire_sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::manager::BufferManager;

/// What one maintenance cycle accomplished (returned by
/// [`Maintenance::tick`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CycleStats {
    /// DRAM frames freed by pre-eviction.
    pub freed_dram: usize,
    /// NVM frames freed by pre-eviction.
    pub freed_nvm: usize,
    /// Dirty NVM pages written back to SSD (subset of `freed_nvm`).
    pub nvm_writebacks: usize,
}

/// Wake-up channel between the manager's allocation path and the worker
/// threads.
pub(crate) struct MaintSignal {
    state: Mutex<SignalState>,
    /// Workers wait here between cycles (with the configured interval as
    /// a timeout, so refill happens even without kicks).
    work_cv: Condvar,
    /// `pause_for_crash` waits here for every worker to park.
    park_cv: Condvar,
    /// Pending-kick hint so the allocation path takes the mutex at most
    /// once per outstanding kick.
    kicked_hint: AtomicBool,
}

#[derive(Default)]
struct SignalState {
    kicked: bool,
    stop: bool,
    paused: bool,
    /// Workers currently parked at the pause gate.
    parked: usize,
}

impl MaintSignal {
    fn new() -> Self {
        MaintSignal {
            state: Mutex::new(SignalState::default()),
            work_cv: Condvar::new(),
            park_cv: Condvar::new(),
            kicked_hint: AtomicBool::new(false),
        }
    }

    /// Wake the workers for an immediate cycle (free list dipped below the
    /// low watermark).
    pub(crate) fn kick(&self) {
        // relaxed: the hint only dedups kicks; a suppressed kick is
        // recovered by the workers' periodic timed wait, and the real
        // signal travels through the mutex-protected state below.
        if self.kicked_hint.swap(true, Ordering::Relaxed) {
            return; // a kick is already pending
        }
        let mut st = self.state.lock();
        st.kicked = true;
        self.work_cv.notify_all();
    }
}

/// Lifecycle handle for the background maintenance service of one
/// [`BufferManager`], created by [`BufferManager::maintenance`].
///
/// The handle starts inert. [`start`](Self::start) spawns the worker
/// threads configured in [`MaintenanceConfig`](crate::MaintenanceConfig);
/// [`tick`](Self::tick) instead drives one cycle deterministically on the
/// caller's thread. Dropping the handle stops the workers and detaches the
/// service from the manager.
pub struct Maintenance {
    bm: Arc<BufferManager>,
    sig: Arc<MaintSignal>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Maintenance {
    pub(crate) fn new(bm: Arc<BufferManager>) -> Self {
        let sig = Arc::new(MaintSignal::new());
        bm.attach_maint_signal(Arc::clone(&sig));
        Maintenance {
            bm,
            sig,
            workers: Mutex::new(Vec::new()),
        }
    }

    /// Spawn the configured worker threads (idempotent while running).
    /// From this point fetch misses prefer the pre-evicted free list and
    /// count inline evictions as backpressure fallbacks.
    pub fn start(&self) {
        let mut workers = self.workers.lock();
        if !workers.is_empty() {
            return;
        }
        {
            let mut st = self.sig.state.lock();
            st.stop = false;
            st.paused = false;
            st.kicked = true; // fill to the high watermark right away
        }
        let m = &self.bm.config().maintenance;
        let interval = Duration::from_micros(m.interval_us.max(1));
        for _ in 0..m.workers.max(1) {
            let bm = Arc::clone(&self.bm);
            let sig = Arc::clone(&self.sig);
            workers.push(std::thread::spawn(move || worker_loop(&bm, &sig, interval)));
        }
        self.bm.set_maint_active(true);
    }

    /// Whether worker threads are currently running.
    pub fn is_running(&self) -> bool {
        !self.workers.lock().is_empty()
    }

    /// Stop and join the worker threads (idempotent; also runs on drop).
    /// Fetches revert to fully inline eviction.
    pub fn stop(&self) {
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.workers.lock());
        if handles.is_empty() {
            return;
        }
        self.bm.set_maint_active(false);
        {
            let mut st = self.sig.state.lock();
            st.stop = true;
            self.sig.work_cv.notify_all();
        }
        for h in handles {
            let _ = h.join();
        }
        self.sig.state.lock().stop = false;
    }

    /// Park every worker before a (simulated) crash: returns only once no
    /// worker is mid-cycle, so no maintenance I/O races the crash or the
    /// recovery that follows. Kicks are ignored while parked. Call
    /// [`resume`](Self::resume) after recovery.
    pub fn pause_for_crash(&self) {
        let n = self.workers.lock().len();
        let mut st = self.sig.state.lock();
        st.paused = true;
        self.sig.work_cv.notify_all();
        while st.parked < n {
            self.sig.park_cv.wait(&mut st);
        }
    }

    /// Un-park workers paused by [`pause_for_crash`](Self::pause_for_crash)
    /// and schedule an immediate refill cycle.
    pub fn resume(&self) {
        let mut st = self.sig.state.lock();
        st.paused = false;
        st.kicked = true;
        self.sig.work_cv.notify_all();
    }

    /// Run one maintenance cycle inline on the caller's thread and return
    /// what it did. This is the deterministic mode: single-threaded
    /// drivers (the chaos explorer) interleave ticks with foreground work
    /// at fixed points, keeping policy/fault draw sequences reproducible.
    /// No-op while paused for a crash.
    pub fn tick(&self) -> CycleStats {
        if self.sig.state.lock().paused {
            return CycleStats::default();
        }
        self.bm.maintenance_cycle()
    }
}

impl Drop for Maintenance {
    fn drop(&mut self) {
        self.stop();
        self.bm.detach_maint_signal();
    }
}

impl std::fmt::Debug for Maintenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Maintenance")
            .field("running", &self.is_running())
            .field("config", &self.bm.config().maintenance)
            .finish_non_exhaustive()
    }
}

/// Worker thread body: wait for a kick (or the periodic interval), run one
/// cycle, repeat. Parks at the pause gate across crashes.
fn worker_loop(bm: &Arc<BufferManager>, sig: &Arc<MaintSignal>, interval: Duration) {
    loop {
        {
            let mut st = sig.state.lock();
            loop {
                if st.stop {
                    return;
                }
                if st.paused {
                    st.parked += 1;
                    sig.park_cv.notify_all();
                    while st.paused && !st.stop {
                        sig.work_cv.wait(&mut st);
                    }
                    st.parked -= 1;
                    continue;
                }
                if st.kicked {
                    st.kicked = false;
                    // relaxed: hint reset; the authoritative flag lives
                    // under the mutex (see `kick`).
                    sig.kicked_hint.store(false, Ordering::Relaxed);
                    break;
                }
                // Periodic refill: a timed-out wait runs a cycle even
                // without a kick (covers kicks suppressed by the hint
                // racing a concurrent cycle).
                if sig.work_cv.wait_for(&mut st, interval).timed_out() && !st.stop && !st.paused {
                    st.kicked = false;
                    // relaxed: hint reset, as above.
                    sig.kicked_hint.store(false, Ordering::Relaxed);
                    break;
                }
            }
        }
        bm.maintenance_cycle();
    }
}
