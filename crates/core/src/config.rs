//! Buffer manager configuration and builder.

use spitfire_device::{PersistenceTracking, SsdBackendConfig, TimeScale};

use crate::policy::MigrationPolicy;
use crate::replacement::PolicyConfig;

/// Default page size: 16 KB, as in HyMem and the paper's experiments.
pub const DEFAULT_PAGE_SIZE: usize = 16 * 1024;

/// Which storage hierarchy a configuration describes (paper §6.6 compares
/// all of these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hierarchy {
    /// Two tiers: DRAM buffer over SSD (the classic design).
    DramSsd,
    /// Two tiers: NVM buffer over SSD (app-direct mode).
    NvmSsd,
    /// Three tiers: DRAM and NVM buffers over SSD.
    DramNvmSsd,
    /// Two tiers, with tier 1 being NVM in *memory mode*: DRAM acts as a
    /// hardware-managed cache and the DBMS sees one large volatile buffer
    /// (paper §2.2, Figure 5).
    MemoryModeSsd,
}

/// Errors produced by [`BufferManagerConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Page size must be a power of two of at least 512 bytes.
    BadPageSize(usize),
    /// Both buffers were configured with zero capacity.
    NoBufferCapacity,
    /// A buffer capacity is smaller than one page.
    CapacityTooSmall {
        /// Tier label ("dram" or "nvm").
        tier: &'static str,
        /// Configured capacity in bytes.
        capacity: usize,
    },
    /// Fine-grained loading granule must be a power of two in
    /// `[64, page_size]`.
    BadGranule(usize),
    /// Mini pages require fine-grained loading to be enabled.
    MiniPagesNeedGranule,
    /// Memory mode needs both a DRAM cache size and NVM capacity.
    BadMemoryMode,
    /// Maintenance watermarks/batching are inconsistent (the payload names
    /// the offending field).
    BadMaintenance(&'static str),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::BadPageSize(s) => {
                write!(f, "page size {s} must be a power of two >= 512")
            }
            ConfigError::NoBufferCapacity => {
                write!(
                    f,
                    "at least one of the DRAM and NVM buffers must have capacity"
                )
            }
            ConfigError::CapacityTooSmall { tier, capacity } => {
                write!(
                    f,
                    "{tier} capacity of {capacity} bytes holds no complete page"
                )
            }
            ConfigError::BadGranule(g) => {
                write!(
                    f,
                    "loading granule {g} must be a power of two in [64, page_size]"
                )
            }
            ConfigError::MiniPagesNeedGranule => {
                write!(f, "mini pages require fine-grained loading (set a granule)")
            }
            ConfigError::BadMemoryMode => {
                write!(
                    f,
                    "memory mode requires nonzero DRAM (cache) and NVM capacities"
                )
            }
            ConfigError::BadMaintenance(what) => {
                write!(f, "bad maintenance configuration: {what}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Background maintenance tuning: per-tier free-frame watermarks and
/// write-back batching (see the [`crate::Maintenance`] handle).
///
/// Watermarks are *fractions of the pool's frame count* kept free. When a
/// tier's free frames drop below `low`, maintenance workers pre-evict CLOCK
/// victims until `high` is reached, so a fetch miss can take a frame from
/// the free list instead of running eviction I/O inline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaintenanceConfig {
    /// Free-frame fraction of the DRAM pool below which workers refill.
    pub dram_low: f64,
    /// Free-frame fraction the DRAM refill aims for (`> dram_low`).
    pub dram_high: f64,
    /// Free-frame fraction of the NVM pool below which workers refill.
    pub nvm_low: f64,
    /// Free-frame fraction the NVM refill aims for (`> nvm_low`).
    pub nvm_high: f64,
    /// Max pages written back per batch; dirty NVM victims in one batch
    /// share a single SSD sync barrier, amortizing the device cost model's
    /// per-op latency.
    pub batch: usize,
    /// Worker wake-up period in microseconds when not kicked by a
    /// low-watermark signal.
    pub interval_us: u64,
    /// Number of worker threads spawned by [`crate::Maintenance::start`].
    pub workers: usize,
}

impl Default for MaintenanceConfig {
    fn default() -> Self {
        MaintenanceConfig {
            // The demand kick fires when free frames drop below `low`, so
            // `low` must leave enough slack to absorb an alloc burst while
            // a worker wakes up; `high` is the refill target and bounds
            // the standing capacity loss.
            dram_low: 1.0 / 8.0,
            dram_high: 1.0 / 4.0,
            // NVM watermarks are proportionally slimmer than DRAM's: the
            // pool is larger, demand per frame lower, and every standing
            // free frame is resident capacity given up.
            nvm_low: 1.0 / 16.0,
            nvm_high: 1.0 / 8.0,
            // Batch size trades fsync amortization against how long the
            // batch's frames stay claimed-but-unfreed.
            batch: 4,
            interval_us: 500,
            // Two workers so a DRAM refill is never stuck behind an
            // in-flight NVM write-back batch.
            workers: 2,
        }
    }
}

impl MaintenanceConfig {
    fn validate(&self) -> Result<(), ConfigError> {
        for (low, high) in [
            (self.dram_low, self.dram_high),
            (self.nvm_low, self.nvm_high),
        ] {
            if !(0.0..=0.9).contains(&low) || !(0.0..=0.9).contains(&high) {
                return Err(ConfigError::BadMaintenance(
                    "watermarks must lie in [0, 0.9]",
                ));
            }
            if low > high {
                return Err(ConfigError::BadMaintenance(
                    "low watermark above high watermark",
                ));
            }
        }
        if self.batch == 0 {
            return Err(ConfigError::BadMaintenance("batch must be at least 1"));
        }
        if self.workers == 0 {
            return Err(ConfigError::BadMaintenance("workers must be at least 1"));
        }
        Ok(())
    }
}

/// Configuration for a [`crate::BufferManager`]; construct via
/// [`BufferManagerConfig::builder`].
#[derive(Debug, Clone)]
pub struct BufferManagerConfig {
    /// Page size in bytes (power of two, ≥ 512).
    pub page_size: usize,
    /// DRAM buffer capacity in bytes (0 disables the DRAM buffer). In
    /// memory mode this is the size of the DRAM cache in front of NVM.
    pub dram_capacity: usize,
    /// NVM buffer capacity in bytes (0 disables the NVM buffer). In memory
    /// mode this is the capacity of the volatile composite device.
    pub nvm_capacity: usize,
    /// Initial data migration policy.
    pub policy: MigrationPolicy,
    /// Scale for emulated device delays.
    pub time_scale: TimeScale,
    /// NVM persistence bookkeeping (enable `Full` for crash tests).
    pub persistence: PersistenceTracking,
    /// Fine-grained loading granule in bytes (None = whole-page loading;
    /// paper §2.1, Figure 11 sweeps 64–512 B).
    pub fine_grained: Option<usize>,
    /// Enable the mini-page layout for fine-grained pages (paper §2.1).
    pub mini_pages: bool,
    /// Run tier 1 in memory mode (DRAM as hardware cache over NVM).
    pub memory_mode: bool,
    /// Capacity of the HyMem admission queue in pages; defaults to half the
    /// NVM buffer's page count (§6.5).
    pub admission_queue_capacity: Option<usize>,
    /// Seed for the policy's coin flips (reproducible experiments).
    pub seed: u64,
    /// Background maintenance tuning (watermarks, batch size, workers).
    pub maintenance: MaintenanceConfig,
    /// Use non-blocking shadow-copy migrations: promotions and dirty
    /// write-backs copy the page while the source stays open to optimistic
    /// readers and commit via a version check, instead of closing the pin
    /// word across the device I/O. Disable to restore the blocking
    /// protocol (baseline for the migration-stall benchmark).
    pub shadow_migrations: bool,
    /// SSD backing store: the in-memory emulation (default) or a real
    /// file with direct I/O.
    pub ssd_backend: SsdBackendConfig,
    /// Replacement policy for the DRAM (tier 1) pool.
    pub dram_policy: PolicyConfig,
    /// Replacement policy for the NVM (tier 2) pool.
    pub nvm_policy: PolicyConfig,
}

impl BufferManagerConfig {
    /// Start building a configuration.
    pub fn builder() -> BufferManagerConfigBuilder {
        BufferManagerConfigBuilder {
            config: Self::default_config(),
        }
    }

    fn default_config() -> Self {
        BufferManagerConfig {
            page_size: DEFAULT_PAGE_SIZE,
            dram_capacity: 64 * 1024 * 1024,
            nvm_capacity: 256 * 1024 * 1024,
            policy: MigrationPolicy::lazy(),
            time_scale: TimeScale::REAL,
            persistence: PersistenceTracking::Counters,
            fine_grained: None,
            mini_pages: false,
            memory_mode: false,
            admission_queue_capacity: None,
            seed: 0x5f17f17e,
            maintenance: MaintenanceConfig::default(),
            shadow_migrations: true,
            ssd_backend: SsdBackendConfig::default(),
            dram_policy: PolicyConfig::Clock,
            nvm_policy: PolicyConfig::Clock,
        }
    }

    /// The hierarchy implied by the configured capacities.
    pub fn hierarchy(&self) -> Hierarchy {
        if self.memory_mode {
            Hierarchy::MemoryModeSsd
        } else {
            match (self.dram_capacity > 0, self.nvm_capacity > 0) {
                (true, true) => Hierarchy::DramNvmSsd,
                (true, false) => Hierarchy::DramSsd,
                (false, true) => Hierarchy::NvmSsd,
                (false, false) => Hierarchy::DramSsd, // rejected by validate()
            }
        }
    }

    /// Number of whole pages the DRAM buffer holds.
    pub fn dram_pages(&self) -> usize {
        self.dram_capacity / self.page_size
    }

    /// Number of whole pages the NVM buffer holds.
    pub fn nvm_pages(&self) -> usize {
        self.nvm_capacity / self.page_size
    }

    /// Check all invariants; called by the manager on build.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.page_size.is_power_of_two() || self.page_size < 512 {
            return Err(ConfigError::BadPageSize(self.page_size));
        }
        if self.memory_mode {
            if self.dram_capacity == 0 || self.nvm_capacity == 0 {
                return Err(ConfigError::BadMemoryMode);
            }
            if self.nvm_capacity < self.page_size {
                return Err(ConfigError::CapacityTooSmall {
                    tier: "nvm",
                    capacity: self.nvm_capacity,
                });
            }
        } else {
            if self.dram_capacity == 0 && self.nvm_capacity == 0 {
                return Err(ConfigError::NoBufferCapacity);
            }
            if self.dram_capacity > 0 && self.dram_capacity < self.page_size {
                return Err(ConfigError::CapacityTooSmall {
                    tier: "dram",
                    capacity: self.dram_capacity,
                });
            }
            if self.nvm_capacity > 0 && self.nvm_capacity < self.page_size {
                return Err(ConfigError::CapacityTooSmall {
                    tier: "nvm",
                    capacity: self.nvm_capacity,
                });
            }
        }
        if let Some(g) = self.fine_grained {
            if !g.is_power_of_two() || g < 64 || g > self.page_size {
                return Err(ConfigError::BadGranule(g));
            }
            // A mini page (16 granule slots + one header cache line,
            // Figure 2b) must fit within one slab frame.
            if self.mini_pages && 16 * g + 64 > self.page_size {
                return Err(ConfigError::BadGranule(g));
            }
        } else if self.mini_pages {
            return Err(ConfigError::MiniPagesNeedGranule);
        }
        self.maintenance.validate()?;
        Ok(())
    }
}

/// Builder for [`BufferManagerConfig`].
#[derive(Debug, Clone)]
pub struct BufferManagerConfigBuilder {
    config: BufferManagerConfig,
}

impl BufferManagerConfigBuilder {
    /// Set the page size in bytes (power of two, ≥ 512; default 16 KB).
    pub fn page_size(mut self, bytes: usize) -> Self {
        self.config.page_size = bytes;
        self
    }

    /// Set the DRAM buffer capacity in bytes (0 disables DRAM).
    pub fn dram_capacity(mut self, bytes: usize) -> Self {
        self.config.dram_capacity = bytes;
        self
    }

    /// Set the NVM buffer capacity in bytes (0 disables NVM).
    pub fn nvm_capacity(mut self, bytes: usize) -> Self {
        self.config.nvm_capacity = bytes;
        self
    }

    /// Set the initial data migration policy (default: Spitfire-Lazy).
    pub fn policy(mut self, policy: MigrationPolicy) -> Self {
        self.config.policy = policy;
        self
    }

    /// Set the emulated-delay scale (default: REAL; use ZERO in tests).
    pub fn time_scale(mut self, scale: TimeScale) -> Self {
        self.config.time_scale = scale;
        self
    }

    /// Set NVM persistence bookkeeping (default: counters only).
    pub fn persistence(mut self, tracking: PersistenceTracking) -> Self {
        self.config.persistence = tracking;
        self
    }

    /// Enable cache-line-grained loading with the given granule in bytes.
    pub fn fine_grained(mut self, granule: usize) -> Self {
        self.config.fine_grained = Some(granule);
        self
    }

    /// Enable the mini-page layout (requires [`Self::fine_grained`]).
    pub fn mini_pages(mut self, enabled: bool) -> Self {
        self.config.mini_pages = enabled;
        self
    }

    /// Run tier 1 in memory mode (DRAM cache over NVM; Figure 5).
    pub fn memory_mode(mut self, enabled: bool) -> Self {
        self.config.memory_mode = enabled;
        self
    }

    /// Override the admission queue capacity in pages.
    pub fn admission_queue_capacity(mut self, pages: usize) -> Self {
        self.config.admission_queue_capacity = Some(pages);
        self
    }

    /// Seed the policy coin flips.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Set the full background-maintenance tuning block.
    pub fn maintenance(mut self, maintenance: MaintenanceConfig) -> Self {
        self.config.maintenance = maintenance;
        self
    }

    /// Set both tiers' free-frame watermarks (fractions of each pool's
    /// frame count; `low <= high`, both in `[0, 0.9]`).
    pub fn watermarks(mut self, low: f64, high: f64) -> Self {
        self.config.maintenance.dram_low = low;
        self.config.maintenance.dram_high = high;
        self.config.maintenance.nvm_low = low;
        self.config.maintenance.nvm_high = high;
        self
    }

    /// Set the maintenance write-back batch size (pages per SSD sync).
    pub fn maintenance_batch(mut self, pages: usize) -> Self {
        self.config.maintenance.batch = pages;
        self
    }

    /// Enable or disable non-blocking shadow-copy migrations (default:
    /// enabled; disable for the blocking baseline).
    pub fn shadow_migrations(mut self, enabled: bool) -> Self {
        self.config.shadow_migrations = enabled;
        self
    }

    /// Choose the SSD backing store (default: in-memory emulation).
    pub fn ssd_backend(mut self, backend: SsdBackendConfig) -> Self {
        self.config.ssd_backend = backend;
        self
    }

    /// Choose the DRAM pool's replacement policy (default: CLOCK).
    pub fn dram_policy(mut self, policy: PolicyConfig) -> Self {
        self.config.dram_policy = policy;
        self
    }

    /// Choose the NVM pool's replacement policy (default: CLOCK).
    pub fn nvm_policy(mut self, policy: PolicyConfig) -> Self {
        self.config.nvm_policy = policy;
        self
    }

    /// Finish, validating invariants.
    pub fn build(self) -> Result<BufferManagerConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_build_is_valid_three_tier() {
        let c = BufferManagerConfig::builder().build().unwrap();
        assert_eq!(c.hierarchy(), Hierarchy::DramNvmSsd);
        assert_eq!(c.page_size, 16 * 1024);
        assert_eq!(c.dram_pages(), 64 * 1024 * 1024 / (16 * 1024));
    }

    #[test]
    fn two_tier_hierarchies() {
        let c = BufferManagerConfig::builder()
            .nvm_capacity(0)
            .build()
            .unwrap();
        assert_eq!(c.hierarchy(), Hierarchy::DramSsd);
        let c = BufferManagerConfig::builder()
            .dram_capacity(0)
            .build()
            .unwrap();
        assert_eq!(c.hierarchy(), Hierarchy::NvmSsd);
    }

    #[test]
    fn zero_capacity_everywhere_is_rejected() {
        let err = BufferManagerConfig::builder()
            .dram_capacity(0)
            .nvm_capacity(0)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::NoBufferCapacity);
    }

    #[test]
    fn bad_page_sizes_rejected() {
        assert!(matches!(
            BufferManagerConfig::builder().page_size(1000).build(),
            Err(ConfigError::BadPageSize(1000))
        ));
        assert!(matches!(
            BufferManagerConfig::builder().page_size(256).build(),
            Err(ConfigError::BadPageSize(256))
        ));
    }

    #[test]
    fn sub_page_capacity_rejected() {
        let err = BufferManagerConfig::builder()
            .page_size(16 * 1024)
            .dram_capacity(1024)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::CapacityTooSmall {
                tier: "dram",
                capacity: 1024
            }
        );
    }

    #[test]
    fn granule_validation() {
        assert!(BufferManagerConfig::builder()
            .fine_grained(256)
            .build()
            .is_ok());
        assert!(matches!(
            BufferManagerConfig::builder().fine_grained(48).build(),
            Err(ConfigError::BadGranule(48))
        ));
        assert!(matches!(
            BufferManagerConfig::builder()
                .page_size(4096)
                .fine_grained(8192)
                .build(),
            Err(ConfigError::BadGranule(8192))
        ));
        assert_eq!(
            BufferManagerConfig::builder()
                .mini_pages(true)
                .build()
                .unwrap_err(),
            ConfigError::MiniPagesNeedGranule
        );
    }

    #[test]
    fn maintenance_validation() {
        assert!(BufferManagerConfig::builder()
            .watermarks(0.1, 0.25)
            .maintenance_batch(16)
            .build()
            .is_ok());
        assert!(matches!(
            BufferManagerConfig::builder().watermarks(0.5, 0.1).build(),
            Err(ConfigError::BadMaintenance(_))
        ));
        assert!(matches!(
            BufferManagerConfig::builder().watermarks(-0.1, 0.1).build(),
            Err(ConfigError::BadMaintenance(_))
        ));
        assert!(matches!(
            BufferManagerConfig::builder().maintenance_batch(0).build(),
            Err(ConfigError::BadMaintenance(_))
        ));
        let m = MaintenanceConfig {
            workers: 0,
            ..Default::default()
        };
        assert!(matches!(
            BufferManagerConfig::builder().maintenance(m).build(),
            Err(ConfigError::BadMaintenance(_))
        ));
    }

    #[test]
    fn memory_mode_requires_both_capacities() {
        assert!(matches!(
            BufferManagerConfig::builder()
                .memory_mode(true)
                .dram_capacity(0)
                .build(),
            Err(ConfigError::BadMemoryMode)
        ));
        let c = BufferManagerConfig::builder()
            .memory_mode(true)
            .build()
            .unwrap();
        assert_eq!(c.hierarchy(), Hierarchy::MemoryModeSsd);
    }
}
