//! Fundamental identifiers and enums shared across the buffer manager.

use serde::{Deserialize, Serialize};

/// Logical identifier of a database page.
///
/// Page ids are dense, allocated by [`crate::BufferManager::allocate_page`],
/// and never reused. The newtype keeps them from being confused with frame
/// ids or tuple keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PageId(pub u64);

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Index of a buffer frame within one tier's pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrameId(pub u32);

/// The three storage tiers of the hierarchy (paper Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// Volatile first tier.
    Dram,
    /// Persistent byte-addressable second tier.
    Nvm,
    /// Persistent block-addressable third tier.
    Ssd,
}

impl Tier {
    /// Short label for metrics output.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Dram => "dram",
            Tier::Nvm => "nvm",
            Tier::Ssd => "ssd",
        }
    }
}

/// Whether a page is being fetched to be read or modified.
///
/// The migration policy consults this to pick the probability knob: `D_r`
/// and `N_r` govern reads, `D_w` and `N_w` govern writes (paper §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessIntent {
    /// The caller will only read the page.
    Read,
    /// The caller will modify the page.
    Write,
}

/// Data-flow paths between tiers (paper Figure 3), used as metric keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MigrationPath {
    /// ① SSD → NVM (read admission into the NVM buffer).
    SsdToNvm,
    /// ② NVM → DRAM (promotion).
    NvmToDram,
    /// ④ SSD → DRAM (read bypassing NVM).
    SsdToDram,
    /// ⑤ NVM → SSD (NVM eviction write-back).
    NvmToSsd,
    /// ⑦ DRAM → NVM (DRAM eviction admitted to NVM).
    DramToNvm,
    /// ⑨ DRAM → SSD (DRAM eviction bypassing NVM).
    DramToSsd,
}

impl MigrationPath {
    /// All paths, for iteration in metric reports.
    pub const ALL: [MigrationPath; 6] = [
        MigrationPath::SsdToNvm,
        MigrationPath::NvmToDram,
        MigrationPath::SsdToDram,
        MigrationPath::NvmToSsd,
        MigrationPath::DramToNvm,
        MigrationPath::DramToSsd,
    ];

    /// Short label for metrics output.
    pub fn label(self) -> &'static str {
        match self {
            MigrationPath::SsdToNvm => "ssd->nvm",
            MigrationPath::NvmToDram => "nvm->dram",
            MigrationPath::SsdToDram => "ssd->dram",
            MigrationPath::NvmToSsd => "nvm->ssd",
            MigrationPath::DramToNvm => "dram->nvm",
            MigrationPath::DramToSsd => "dram->ssd",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_labels() {
        assert_eq!(PageId(7).to_string(), "P7");
        assert_eq!(Tier::Nvm.label(), "nvm");
        assert_eq!(MigrationPath::SsdToDram.label(), "ssd->dram");
        assert_eq!(MigrationPath::ALL.len(), 6);
    }

    #[test]
    fn page_ids_order_by_value() {
        assert!(PageId(1) < PageId(2));
        assert_eq!(PageId(3), PageId(3));
    }
}
