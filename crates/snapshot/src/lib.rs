//! Generation-numbered, checksummed snapshot files for instant restart.
//!
//! A snapshot *store* is a dedicated SSD device holding an append-only
//! sequence of fixed-size **blocks** plus a single **superblock** (page 0)
//! naming the installed generations. Each checkpoint writes one new
//! *generation*: a contiguous run of blocks — page images, index runs, and
//! a trailing manifest — written in a single pass with O(1) writer memory,
//! then installed atomically by rewriting and syncing the superblock (the
//! emulated-device analogue of an atomic rename). Every block carries a
//! CRC-32 over its header and payload; the superblock carries a whole-page
//! CRC. A generation is *valid* only if every block in its chain (itself
//! plus the incremental ancestors back to the nearest full snapshot)
//! passes its checksum; recovery falls back one generation — then another —
//! on any mismatch.
//!
//! The checksum is the canonical [`spitfire_sync::crc32`] shared with the
//! WAL framing and the server wire protocol. This crate knows nothing
//! about transactions: the checkpointer and the recovery path in
//! `crates/txn` drive it.

#![warn(missing_docs)]

mod format;
mod store;

pub use format::{BlockKind, Manifest, TableMeta, BLOCK_HEADER, MAX_SUPERBLOCK_GENERATIONS};
pub use store::{GenerationInfo, SnapshotStore, SnapshotWriter};

/// Errors from snapshot reading/writing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The underlying device failed (possibly injected by the fault plane).
    Device(spitfire_device::DeviceError),
    /// A block or superblock failed structural validation. Recovery treats
    /// this as "generation invalid" and falls back, it is not fatal.
    Corrupt(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Device(e) => write!(f, "snapshot device error: {e}"),
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Device(e) => Some(e),
            SnapshotError::Corrupt(_) => None,
        }
    }
}

impl From<spitfire_device::DeviceError> for SnapshotError {
    fn from(e: spitfire_device::DeviceError) -> Self {
        SnapshotError::Device(e)
    }
}

/// Result alias for snapshot operations.
pub type Result<T> = std::result::Result<T, SnapshotError>;

/// Retry transient injected faults with a short exponential backoff, the
/// same discipline the WAL applies (`wal_retry`): snapshot I/O must ride
/// through background fault noise without failing a checkpoint.
pub(crate) fn snap_retry<T>(
    mut f: impl FnMut() -> spitfire_device::Result<T>,
) -> spitfire_device::Result<T> {
    let mut attempt = 0u32;
    loop {
        match f() {
            Err(e) if e.is_retryable() && attempt < 8 => {
                attempt += 1;
                std::thread::sleep(std::time::Duration::from_micros(1 << attempt.min(6)));
            }
            other => return other,
        }
    }
}
