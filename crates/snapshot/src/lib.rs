//! Generation-numbered, checksummed snapshot files for instant restart.
//!
//! A snapshot *store* is a dedicated SSD device holding an append-only
//! sequence of fixed-size **blocks** plus a single **superblock** (page 0)
//! naming the installed generations. Each checkpoint writes one new
//! *generation*: a contiguous run of blocks — page images, index runs, and
//! a trailing manifest — written in a single pass with O(1) writer memory,
//! then installed atomically by rewriting and syncing the superblock (the
//! emulated-device analogue of an atomic rename). Every block carries a
//! CRC-32 over its header and payload; the superblock carries a whole-page
//! CRC. A generation is *valid* only if every block in its chain (itself
//! plus the incremental ancestors back to the nearest full snapshot)
//! passes its checksum; recovery falls back one generation — then another —
//! on any mismatch.
//!
//! The crate owns the [`crc32`] implementation (re-exported by
//! `spitfire_txn::wal` so the log framing and the server wire protocol
//! keep using the same checksum) and knows nothing about transactions:
//! the checkpointer and the recovery path in `crates/txn` drive it.

#![warn(missing_docs)]

mod format;
mod store;

pub use format::{BlockKind, Manifest, TableMeta, BLOCK_HEADER, MAX_SUPERBLOCK_GENERATIONS};
pub use store::{GenerationInfo, SnapshotStore, SnapshotWriter};

/// CRC-32 slicing-by-8 tables (IEEE polynomial), built at compile time.
/// `CRC32_TABLES[0]` is the classic one-byte table; table `k` advances a
/// byte that sits `k` positions deeper in an 8-byte group.
const CRC32_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
};

/// CRC-32 (IEEE, slicing-by-8). Recovery checksums every block of a
/// snapshot chain and every WAL record, so this sits on the restart path:
/// a byte-at-a-time implementation is latency-bound on the table lookup
/// chain and would dominate instant-restart time. Eight parallel tables
/// break that dependency. This is the one checksum used by the snapshot
/// blocks, the WAL framing, and the server wire protocol.
pub fn crc32(data: &[u8]) -> u32 {
    let t = &CRC32_TABLES;
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let x = crc ^ u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        crc = t[7][(x & 0xFF) as usize]
            ^ t[6][((x >> 8) & 0xFF) as usize]
            ^ t[5][((x >> 16) & 0xFF) as usize]
            ^ t[4][(x >> 24) as usize]
            ^ t[3][c[4] as usize]
            ^ t[2][c[5] as usize]
            ^ t[1][c[6] as usize]
            ^ t[0][c[7] as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod crc_tests {
    use super::crc32;

    /// Bitwise reference implementation (the original one).
    fn crc32_ref(data: &[u8]) -> u32 {
        let mut crc = 0xFFFF_FFFFu32;
        for &b in data {
            crc ^= b as u32;
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
        !crc
    }

    #[test]
    fn known_answer() {
        // The canonical CRC-32/IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn matches_bitwise_reference_at_every_alignment() {
        let data: Vec<u8> = (0..1024u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        for start in 0..8 {
            for len in [0, 1, 7, 8, 9, 63, 64, 65, 255, 1000] {
                let slice = &data[start..start + len];
                assert_eq!(crc32(slice), crc32_ref(slice), "start {start} len {len}");
            }
        }
    }
}

/// Errors from snapshot reading/writing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The underlying device failed (possibly injected by the fault plane).
    Device(spitfire_device::DeviceError),
    /// A block or superblock failed structural validation. Recovery treats
    /// this as "generation invalid" and falls back, it is not fatal.
    Corrupt(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Device(e) => write!(f, "snapshot device error: {e}"),
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Device(e) => Some(e),
            SnapshotError::Corrupt(_) => None,
        }
    }
}

impl From<spitfire_device::DeviceError> for SnapshotError {
    fn from(e: spitfire_device::DeviceError) -> Self {
        SnapshotError::Device(e)
    }
}

/// Result alias for snapshot operations.
pub type Result<T> = std::result::Result<T, SnapshotError>;

/// Retry transient injected faults with a short exponential backoff, the
/// same discipline the WAL applies (`wal_retry`): snapshot I/O must ride
/// through background fault noise without failing a checkpoint.
pub(crate) fn snap_retry<T>(
    mut f: impl FnMut() -> spitfire_device::Result<T>,
) -> spitfire_device::Result<T> {
    let mut attempt = 0u32;
    loop {
        match f() {
            Err(e) if e.is_retryable() && attempt < 8 => {
                attempt += 1;
                std::thread::sleep(std::time::Duration::from_micros(1 << attempt.min(6)));
            }
            other => return other,
        }
    }
}
