//! On-disk layout of snapshot blocks, manifests, and the superblock.
//!
//! All integers are little-endian. A store page is `BLOCK_HEADER` bytes of
//! header followed by a payload whose capacity equals the database page
//! size, so one page-image block carries exactly one buffer-pool page.
//!
//! Block header (48 bytes):
//!
//! | off | size | field                                        |
//! |-----|------|----------------------------------------------|
//! | 0   | 8    | magic `SPIFBLK1`                             |
//! | 8   | 4    | CRC-32 over bytes `12..48+payload_len`       |
//! | 12  | 1    | kind (1 page image, 2 index run, 3 manifest) |
//! | 13  | 3    | zero padding                                 |
//! | 16  | 4    | tag (table id for index runs, else 0)        |
//! | 20  | 4    | payload length in bytes                      |
//! | 24  | 8    | generation number                            |
//! | 32  | 8    | sequence number within the generation        |
//! | 40  | 8    | aux (page id for page images, else 0)        |

use spitfire_sync::crc32;

use crate::{Result, SnapshotError};

/// Bytes of header preceding every block payload.
pub const BLOCK_HEADER: usize = 48;

/// Most generations a superblock may list. The store garbage-collects down
/// to the chains of the two newest generations well before this bound; it
/// exists so the superblock always fits one page.
pub const MAX_SUPERBLOCK_GENERATIONS: usize = 32;

pub(crate) const BLOCK_MAGIC: u64 = 0x5350_4946_424C_4B31; // "SPIFBLK1"
pub(crate) const SUPER_MAGIC: u64 = 0x5350_4946_5355_5031; // "SPIFSUP1"
pub(crate) const MANIFEST_MAGIC: u64 = 0x5350_4946_4D41_4E31; // "SPIFMAN1"

/// What a snapshot block carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// One buffer-pool page image; `aux` is the page id.
    PageImage,
    /// A run of sorted `(key, rid)` index entries; `tag` is the table id.
    IndexRun,
    /// The generation's trailing manifest.
    Manifest,
}

impl BlockKind {
    fn to_byte(self) -> u8 {
        match self {
            BlockKind::PageImage => 1,
            BlockKind::IndexRun => 2,
            BlockKind::Manifest => 3,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(BlockKind::PageImage),
            2 => Some(BlockKind::IndexRun),
            3 => Some(BlockKind::Manifest),
            _ => None,
        }
    }
}

/// A decoded block header plus borrowed payload.
pub(crate) struct Block<'a> {
    pub kind: BlockKind,
    pub tag: u32,
    pub gen: u64,
    pub seq: u64,
    pub aux: u64,
    pub payload: &'a [u8],
}

/// Frame `payload` into `page` (a full store page) as a checksummed block.
pub(crate) fn encode_block(
    page: &mut [u8],
    kind: BlockKind,
    tag: u32,
    gen: u64,
    seq: u64,
    aux: u64,
    payload: &[u8],
) {
    assert!(payload.len() <= page.len() - BLOCK_HEADER);
    page.fill(0);
    page[0..8].copy_from_slice(&BLOCK_MAGIC.to_le_bytes());
    page[12] = kind.to_byte();
    page[16..20].copy_from_slice(&tag.to_le_bytes());
    page[20..24].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    page[24..32].copy_from_slice(&gen.to_le_bytes());
    page[32..40].copy_from_slice(&seq.to_le_bytes());
    page[40..48].copy_from_slice(&aux.to_le_bytes());
    page[BLOCK_HEADER..BLOCK_HEADER + payload.len()].copy_from_slice(payload);
    let crc = crc32(&page[12..BLOCK_HEADER + payload.len()]);
    page[8..12].copy_from_slice(&crc.to_le_bytes());
}

/// Decode and CRC-check one store page as a block.
pub(crate) fn decode_block(page: &[u8]) -> Result<Block<'_>> {
    if page.len() < BLOCK_HEADER {
        return Err(SnapshotError::Corrupt("short block"));
    }
    let u64_at = |o: usize| u64::from_le_bytes(page[o..o + 8].try_into().unwrap());
    let u32_at = |o: usize| u32::from_le_bytes(page[o..o + 4].try_into().unwrap());
    if u64_at(0) != BLOCK_MAGIC {
        return Err(SnapshotError::Corrupt("bad block magic"));
    }
    let payload_len = u32_at(20) as usize;
    if payload_len > page.len() - BLOCK_HEADER {
        return Err(SnapshotError::Corrupt("bad block payload length"));
    }
    if u32_at(8) != crc32(&page[12..BLOCK_HEADER + payload_len]) {
        return Err(SnapshotError::Corrupt("block CRC mismatch"));
    }
    let kind =
        BlockKind::from_byte(page[12]).ok_or(SnapshotError::Corrupt("unknown block kind"))?;
    Ok(Block {
        kind,
        tag: u32_at(16),
        gen: u64_at(24),
        seq: u64_at(32),
        aux: u64_at(40),
        payload: &page[BLOCK_HEADER..BLOCK_HEADER + payload_len],
    })
}

/// Per-table metadata recorded in the manifest so recovery can reopen a
/// table without the legacy reverse slot-allocator scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableMeta {
    /// Table id.
    pub id: u32,
    /// Fixed tuple payload size in bytes.
    pub tuple_size: u32,
    /// First page of the table's catalog chain.
    pub catalog_head: u64,
    /// Slot-allocator high-water mark at the checkpoint fence.
    pub allocated_slots: u64,
}

/// The checksummed manifest that closes a generation. Everything recovery
/// needs besides the page images, index runs, and the WAL tail lives here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// This generation's number.
    pub generation: u64,
    /// Parent generation (0 for a full snapshot).
    pub parent: u64,
    /// Whether this generation is a full snapshot (chain base).
    pub full: bool,
    /// WAL fence: recovery replays only records with LSN ≥ this.
    pub fence_lsn: u64,
    /// Root catalog page id of the database.
    pub catalog_root: u64,
    /// Page-allocator high-water mark at the fence.
    pub next_page_id: u64,
    /// Timestamp-oracle value at the fence.
    pub oracle_ts: u64,
    /// Transaction-id counter at the fence.
    pub next_txn_id: u64,
    /// Number of page-image blocks in this generation.
    pub page_images: u64,
    /// Per-table metadata.
    pub tables: Vec<TableMeta>,
}

const MANIFEST_FIXED: usize = 80;
const TABLE_META: usize = 24;

impl Manifest {
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut out = vec![0u8; MANIFEST_FIXED + self.tables.len() * TABLE_META];
        out[0..8].copy_from_slice(&MANIFEST_MAGIC.to_le_bytes());
        out[8..16].copy_from_slice(&self.generation.to_le_bytes());
        out[16..24].copy_from_slice(&self.parent.to_le_bytes());
        out[24..32].copy_from_slice(&self.fence_lsn.to_le_bytes());
        out[32..40].copy_from_slice(&self.catalog_root.to_le_bytes());
        out[40..48].copy_from_slice(&self.next_page_id.to_le_bytes());
        out[48..56].copy_from_slice(&self.oracle_ts.to_le_bytes());
        out[56..64].copy_from_slice(&self.next_txn_id.to_le_bytes());
        out[64..72].copy_from_slice(&self.page_images.to_le_bytes());
        out[72..76].copy_from_slice(&(self.tables.len() as u32).to_le_bytes());
        out[76..80].copy_from_slice(&u32::from(self.full).to_le_bytes());
        for (i, t) in self.tables.iter().enumerate() {
            let o = MANIFEST_FIXED + i * TABLE_META;
            out[o..o + 4].copy_from_slice(&t.id.to_le_bytes());
            out[o + 4..o + 8].copy_from_slice(&t.tuple_size.to_le_bytes());
            out[o + 8..o + 16].copy_from_slice(&t.catalog_head.to_le_bytes());
            out[o + 16..o + 24].copy_from_slice(&t.allocated_slots.to_le_bytes());
        }
        out
    }

    pub(crate) fn decode(payload: &[u8]) -> Result<Manifest> {
        if payload.len() < MANIFEST_FIXED {
            return Err(SnapshotError::Corrupt("short manifest"));
        }
        let u64_at = |o: usize| u64::from_le_bytes(payload[o..o + 8].try_into().unwrap());
        let u32_at = |o: usize| u32::from_le_bytes(payload[o..o + 4].try_into().unwrap());
        if u64_at(0) != MANIFEST_MAGIC {
            return Err(SnapshotError::Corrupt("bad manifest magic"));
        }
        let n_tables = u32_at(72) as usize;
        if payload.len() < MANIFEST_FIXED + n_tables * TABLE_META {
            return Err(SnapshotError::Corrupt("short manifest table list"));
        }
        let tables = (0..n_tables)
            .map(|i| {
                let o = MANIFEST_FIXED + i * TABLE_META;
                TableMeta {
                    id: u32_at(o),
                    tuple_size: u32_at(o + 4),
                    catalog_head: u64_at(o + 8),
                    allocated_slots: u64_at(o + 16),
                }
            })
            .collect();
        Ok(Manifest {
            generation: u64_at(8),
            parent: u64_at(16),
            full: u32_at(76) != 0,
            fence_lsn: u64_at(24),
            catalog_root: u64_at(32),
            next_page_id: u64_at(40),
            oracle_ts: u64_at(48),
            next_txn_id: u64_at(56),
            page_images: u64_at(64),
            tables,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_round_trip_and_crc() {
        let mut page = vec![0u8; BLOCK_HEADER + 256];
        let payload: Vec<u8> = (0..200u32).map(|i| (i * 7) as u8).collect();
        encode_block(&mut page, BlockKind::PageImage, 0, 3, 17, 42, &payload);
        let b = decode_block(&page).unwrap();
        assert_eq!(b.kind, BlockKind::PageImage);
        assert_eq!((b.gen, b.seq, b.aux), (3, 17, 42));
        assert_eq!(b.payload, &payload[..]);

        // Any flipped payload bit must fail the CRC.
        page[BLOCK_HEADER + 100] ^= 0x40;
        assert!(matches!(
            decode_block(&page),
            Err(SnapshotError::Corrupt("block CRC mismatch"))
        ));
    }

    #[test]
    fn manifest_round_trip() {
        let m = Manifest {
            generation: 9,
            parent: 8,
            full: false,
            fence_lsn: 123_456,
            catalog_root: 0,
            next_page_id: 77,
            oracle_ts: 1000,
            next_txn_id: 55,
            page_images: 12,
            tables: vec![
                TableMeta {
                    id: 1,
                    tuple_size: 64,
                    catalog_head: 2,
                    allocated_slots: 500,
                },
                TableMeta {
                    id: 7,
                    tuple_size: 128,
                    catalog_head: 9,
                    allocated_slots: 0,
                },
            ],
        };
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
    }
}
