//! The snapshot store: an append-only block file over a dedicated SSD
//! device with a superblock naming the installed generations.
//!
//! Install protocol (the emulated-device analogue of write-new + fsync +
//! atomic rename):
//!
//! 1. stream the generation's blocks to fresh pages past every live
//!    generation and sync them;
//! 2. rewrite the one-page superblock (page 0) to include the new
//!    generation, then sync again.
//!
//! A crash before step 2's sync leaves the old superblock governing: the
//! half-written generation is unreachable garbage whose pages the next
//! checkpoint simply overwrites. Old generations are garbage-collected at
//! install time by dropping every superblock entry outside the chains of
//! the two newest generations — the previous generation stays whole so
//! recovery can fall back to it when the newest fails its checksums.

use std::collections::BTreeSet;

use parking_lot::Mutex;
use spitfire_device::{
    DeviceError, FaultInjector, PersistenceTracking, SsdDevice, StatsSnapshot, TimeScale,
};

use crate::format::{
    decode_block, encode_block, BlockKind, Manifest, TableMeta, BLOCK_HEADER, SUPER_MAGIC,
};
use spitfire_sync::crc32;

use crate::{snap_retry, Result, SnapshotError, MAX_SUPERBLOCK_GENERATIONS};

const SUPER_HEADER: usize = 16;
const SUPER_ENTRY: usize = 48;

/// One installed generation, as recorded in the superblock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenerationInfo {
    /// Generation number (monotonically increasing from 1).
    pub generation: u64,
    /// Parent generation this increment builds on (0 for a full snapshot).
    pub parent: u64,
    /// First store page of the generation's block run.
    pub start: u64,
    /// Number of blocks (the last one is the manifest).
    pub blocks: u64,
    /// WAL fence LSN recorded at the generation's checkpoint.
    pub fence_lsn: u64,
    /// Whether this generation is a full snapshot (chain base).
    pub full: bool,
}

struct StoreState {
    /// Live generations, ascending by generation number.
    entries: Vec<GenerationInfo>,
    /// First free store page for the next generation's block run.
    next_page: u64,
}

/// A generation-numbered snapshot file over a dedicated SSD device.
pub struct SnapshotStore {
    dev: SsdDevice,
    /// Store page size = [`BLOCK_HEADER`] + database page size.
    page_size: usize,
    /// Payload capacity per block = database page size.
    payload: usize,
    state: Mutex<StoreState>,
}

impl SnapshotStore {
    /// Create a store for a database with `db_page_size`-byte pages. The
    /// backing device gets its own page size (`db_page_size` plus the
    /// block header) so one block carries exactly one pool page.
    pub fn new(db_page_size: usize, scale: TimeScale, tracking: PersistenceTracking) -> Self {
        let page_size = db_page_size + BLOCK_HEADER;
        SnapshotStore {
            dev: SsdDevice::with_tracking(page_size, scale, tracking),
            page_size,
            payload: db_page_size,
            state: Mutex::new(StoreState {
                entries: Vec::new(),
                next_page: 1,
            }),
        }
    }

    /// The backing device (chaos schedules attach fault injectors here;
    /// tests corrupt block pages through it).
    pub fn device(&self) -> &SsdDevice {
        &self.dev
    }

    /// Attach (or detach) a fault injector on the backing device.
    pub fn set_fault_injector(&self, injector: Option<std::sync::Arc<FaultInjector>>) {
        self.dev.set_fault_injector(injector);
    }

    /// Change the emulated-delay scale of the backing device.
    pub fn set_time_scale(&self, scale: TimeScale) {
        self.dev.set_time_scale(scale);
    }

    /// Counters of the backing device.
    pub fn stats(&self) -> StatsSnapshot {
        self.dev.stats().snapshot()
    }

    /// Model power loss on the backing device: un-synced writes vanish.
    /// Call [`SnapshotStore::reload`] afterwards to re-read the surviving
    /// superblock.
    pub fn simulate_crash(&self) {
        self.dev.simulate_crash();
    }

    /// Bytes occupied on the backing device.
    pub fn used_bytes(&self) -> u64 {
        self.dev.used_bytes()
    }

    fn max_entries(&self) -> usize {
        ((self.page_size - SUPER_HEADER - 4) / SUPER_ENTRY).min(MAX_SUPERBLOCK_GENERATIONS)
    }

    /// Re-read the superblock, replacing the in-memory generation list. A
    /// missing or checksum-invalid superblock yields an empty store (the
    /// caller falls back to full-WAL recovery).
    pub fn reload(&self) -> Result<()> {
        let mut page = vec![0u8; self.page_size];
        let entries = match snap_retry(|| self.dev.read_page(0, &mut page)) {
            Ok(()) => decode_superblock(&page, self.max_entries()).unwrap_or_default(),
            Err(DeviceError::PageNotFound(_)) => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        let next_page = entries
            .iter()
            .map(|e| e.start + e.blocks)
            .max()
            .unwrap_or(1);
        *self.state.lock() = StoreState { entries, next_page };
        Ok(())
    }

    /// All live generations, ascending.
    pub fn generations(&self) -> Vec<GenerationInfo> {
        self.state.lock().entries.clone()
    }

    /// The newest installed generation, if any.
    pub fn latest(&self) -> Option<GenerationInfo> {
        self.state.lock().entries.last().copied()
    }

    /// The recorded entry for `gen`, if still live.
    pub fn entry(&self, gen: u64) -> Option<GenerationInfo> {
        self.state
            .lock()
            .entries
            .iter()
            .find(|e| e.generation == gen)
            .copied()
    }

    /// The chain for `gen`: the nearest full ancestor first, `gen` last.
    /// `None` if any link is missing (GC'd or never installed).
    pub fn chain(&self, gen: u64) -> Option<Vec<GenerationInfo>> {
        let state = self.state.lock();
        chain_of(&state.entries, gen)
    }

    /// Start streaming a new generation. `full` forces a chain base (also
    /// implied when the store is empty); incremental generations parent on
    /// the current newest. The generation becomes visible only when
    /// [`SnapshotWriter::finish`] installs it.
    pub fn begin(&self, full: bool, fence_lsn: u64) -> SnapshotWriter<'_> {
        let state = self.state.lock();
        let latest = state.entries.last();
        let full = full || latest.is_none();
        let generation = latest.map_or(0, |e| e.generation) + 1;
        let parent = if full {
            0
        } else {
            latest.map_or(0, |e| e.generation)
        };
        SnapshotWriter {
            store: self,
            generation,
            parent,
            full,
            fence_lsn,
            start: state.next_page,
            seq: 0,
            page_images: 0,
            index_table: 0,
            index_buf: Vec::new(),
            block: vec![0u8; self.page_size],
        }
    }

    /// The newest generation whose whole chain passes validation, walking
    /// newest → oldest. Transient read faults are retried; anything else
    /// just disqualifies the generation.
    pub fn newest_valid(&self) -> Option<u64> {
        let gens: Vec<u64> = {
            let state = self.state.lock();
            state.entries.iter().map(|e| e.generation).collect()
        };
        gens.into_iter()
            .rev()
            .find(|&g| self.validate(g).unwrap_or(false))
    }

    /// CRC-check every block in `gen`'s chain (no payloads are delivered).
    pub fn validate(&self, gen: u64) -> Result<bool> {
        let Some(chain) = self.chain(gen) else {
            return Ok(false);
        };
        let mut page = vec![0u8; self.page_size];
        for link in &chain {
            for i in 0..link.blocks {
                match snap_retry(|| self.dev.read_page(link.start + i, &mut page)) {
                    Ok(()) => {}
                    Err(DeviceError::PageNotFound(_)) => return Ok(false),
                    Err(e) => return Err(e.into()),
                }
                let Ok(block) = decode_block(&page) else {
                    return Ok(false);
                };
                if block.gen != link.generation || block.seq != i {
                    return Ok(false);
                }
                let is_last = i + 1 == link.blocks;
                if is_last != (block.kind == BlockKind::Manifest) {
                    return Ok(false);
                }
                if is_last && Manifest::decode(block.payload).is_err() {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// Stream `gen`'s chain to the callbacks: page images from every link
    /// (base first, so newer images overwrite older ones at the consumer),
    /// index runs from `gen` itself only (each generation dumps its
    /// indexes in full). Returns `gen`'s manifest. Run
    /// [`SnapshotStore::validate`] first — a checksum failure here is an
    /// error, not a fallback.
    pub fn load(
        &self,
        gen: u64,
        mut on_page: impl FnMut(u64, &[u8]),
        mut on_index: impl FnMut(u32, &[(u64, u64)]),
    ) -> Result<Manifest> {
        let chain = self
            .chain(gen)
            .ok_or(SnapshotError::Corrupt("generation chain missing"))?;
        let mut page = vec![0u8; self.page_size];
        let mut manifest = None;
        for link in &chain {
            for i in 0..link.blocks {
                snap_retry(|| self.dev.read_page(link.start + i, &mut page))?;
                let block = decode_block(&page)?;
                match block.kind {
                    BlockKind::PageImage => on_page(block.aux, block.payload),
                    BlockKind::IndexRun => {
                        if link.generation == gen {
                            let entries: Vec<(u64, u64)> = block
                                .payload
                                .chunks_exact(16)
                                .map(|c| {
                                    (
                                        u64::from_le_bytes(c[0..8].try_into().unwrap()),
                                        u64::from_le_bytes(c[8..16].try_into().unwrap()),
                                    )
                                })
                                .collect();
                            on_index(block.tag, &entries);
                        }
                    }
                    BlockKind::Manifest => {
                        if link.generation == gen {
                            manifest = Some(Manifest::decode(block.payload)?);
                        }
                    }
                }
            }
        }
        manifest.ok_or(SnapshotError::Corrupt("manifest missing"))
    }

    /// Install `info` in the superblock, garbage-collecting generations
    /// outside the two newest chains. Called by the writer after its
    /// blocks are durable.
    fn install(&self, info: GenerationInfo) -> Result<()> {
        let mut state = self.state.lock();
        state.entries.push(info);
        gc(&mut state.entries);
        if state.entries.len() > self.max_entries() {
            state.entries.pop();
            return Err(SnapshotError::Corrupt("superblock overflow"));
        }
        state.next_page = state
            .entries
            .iter()
            .map(|e| e.start + e.blocks)
            .max()
            .unwrap_or(1);
        let mut page = vec![0u8; self.page_size];
        encode_superblock(&mut page, &state.entries);
        let install = snap_retry(|| {
            self.dev.write_page(0, &page)?;
            self.dev.sync()
        });
        if let Err(e) = install {
            // Roll the in-memory view back; the durable superblock still
            // describes the previous generation set.
            state.entries.retain(|e| e.generation != info.generation);
            return Err(e.into());
        }
        Ok(())
    }
}

impl std::fmt::Debug for SnapshotStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("SnapshotStore")
            .field("generations", &state.entries.len())
            .field("next_page", &state.next_page)
            .finish_non_exhaustive()
    }
}

/// Streams one generation's blocks; see [`SnapshotStore::begin`].
pub struct SnapshotWriter<'a> {
    store: &'a SnapshotStore,
    generation: u64,
    parent: u64,
    full: bool,
    fence_lsn: u64,
    start: u64,
    seq: u64,
    page_images: u64,
    index_table: u32,
    index_buf: Vec<u8>,
    /// Single-block scratch: the writer holds O(1) memory regardless of
    /// database size.
    block: Vec<u8>,
}

impl SnapshotWriter<'_> {
    /// The generation number being written.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether this generation is a full snapshot.
    pub fn is_full(&self) -> bool {
        self.full
    }

    fn write_block(&mut self, kind: BlockKind, tag: u32, aux: u64, payload: &[u8]) -> Result<()> {
        let mut block = std::mem::take(&mut self.block);
        encode_block(
            &mut block,
            kind,
            tag,
            self.generation,
            self.seq,
            aux,
            payload,
        );
        let res = snap_retry(|| self.store.dev.append_page(self.start + self.seq, &block));
        self.block = block;
        res?;
        self.seq += 1;
        Ok(())
    }

    /// Append one page image.
    pub fn page_image(&mut self, pid: u64, image: &[u8]) -> Result<()> {
        assert_eq!(image.len(), self.store.payload, "page image size mismatch");
        self.flush_index_run()?;
        self.page_images += 1;
        self.write_block(BlockKind::PageImage, 0, pid, image)
    }

    /// Append sorted `(key, rid)` index entries for `table`. Entries are
    /// packed into full blocks; a partial run is held until the table
    /// changes or the generation finishes.
    pub fn index_entries(&mut self, table: u32, entries: &[(u64, u64)]) -> Result<()> {
        if table != self.index_table && !self.index_buf.is_empty() {
            self.flush_index_run()?;
        }
        self.index_table = table;
        for &(key, rid) in entries {
            self.index_buf.extend_from_slice(&key.to_le_bytes());
            self.index_buf.extend_from_slice(&rid.to_le_bytes());
            if self.index_buf.len() + 16 > self.store.payload {
                self.flush_index_run()?;
            }
        }
        Ok(())
    }

    fn flush_index_run(&mut self) -> Result<()> {
        if self.index_buf.is_empty() {
            return Ok(());
        }
        let payload = std::mem::take(&mut self.index_buf);
        self.write_block(BlockKind::IndexRun, self.index_table, 0, &payload)?;
        self.index_buf = payload;
        self.index_buf.clear();
        Ok(())
    }

    /// Close the generation: flush the pending index run, write the
    /// manifest block, sync the blocks, then atomically install the
    /// generation in the superblock. Nothing becomes visible on failure.
    pub fn finish(
        mut self,
        catalog_root: u64,
        next_page_id: u64,
        oracle_ts: u64,
        next_txn_id: u64,
        tables: Vec<TableMeta>,
    ) -> Result<GenerationInfo> {
        self.flush_index_run()?;
        let manifest = Manifest {
            generation: self.generation,
            parent: self.parent,
            full: self.full,
            fence_lsn: self.fence_lsn,
            catalog_root,
            next_page_id,
            oracle_ts,
            next_txn_id,
            page_images: self.page_images,
            tables,
        };
        let payload = manifest.encode();
        if payload.len() > self.store.payload {
            return Err(SnapshotError::Corrupt("manifest exceeds one block"));
        }
        self.write_block(BlockKind::Manifest, 0, 0, &payload)?;
        snap_retry(|| self.store.dev.sync())?;
        let info = GenerationInfo {
            generation: self.generation,
            parent: self.parent,
            start: self.start,
            blocks: self.seq,
            fence_lsn: self.fence_lsn,
            full: self.full,
        };
        self.store.install(info)?;
        Ok(info)
    }
}

impl std::fmt::Debug for SnapshotWriter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotWriter")
            .field("generation", &self.generation)
            .field("blocks", &self.seq)
            .finish_non_exhaustive()
    }
}

fn chain_of(entries: &[GenerationInfo], gen: u64) -> Option<Vec<GenerationInfo>> {
    let mut chain = Vec::new();
    let mut cur = gen;
    loop {
        let e = entries.iter().find(|e| e.generation == cur)?;
        chain.push(*e);
        if e.full {
            break;
        }
        cur = e.parent;
    }
    chain.reverse();
    Some(chain)
}

/// Retain only the chains of the two newest generations; the previous
/// generation stays recoverable for the corrupt-newest fallback.
fn gc(entries: &mut Vec<GenerationInfo>) {
    let mut keep: BTreeSet<u64> = BTreeSet::new();
    let newest: Vec<u64> = entries.iter().rev().take(2).map(|e| e.generation).collect();
    for g in newest {
        if let Some(chain) = chain_of(entries, g) {
            keep.extend(chain.iter().map(|e| e.generation));
        }
    }
    entries.retain(|e| keep.contains(&e.generation));
}

fn encode_superblock(page: &mut [u8], entries: &[GenerationInfo]) {
    page.fill(0);
    page[0..8].copy_from_slice(&SUPER_MAGIC.to_le_bytes());
    page[8..12].copy_from_slice(&1u32.to_le_bytes());
    page[12..16].copy_from_slice(&(entries.len() as u32).to_le_bytes());
    for (i, e) in entries.iter().enumerate() {
        let o = SUPER_HEADER + i * SUPER_ENTRY;
        page[o..o + 8].copy_from_slice(&e.generation.to_le_bytes());
        page[o + 8..o + 16].copy_from_slice(&e.parent.to_le_bytes());
        page[o + 16..o + 24].copy_from_slice(&e.start.to_le_bytes());
        page[o + 24..o + 32].copy_from_slice(&e.blocks.to_le_bytes());
        page[o + 32..o + 40].copy_from_slice(&e.fence_lsn.to_le_bytes());
        page[o + 40..o + 48].copy_from_slice(&u64::from(e.full).to_le_bytes());
    }
    let crc_at = page.len() - 4;
    let crc = crc32(&page[..crc_at]);
    page[crc_at..].copy_from_slice(&crc.to_le_bytes());
}

fn decode_superblock(page: &[u8], max_entries: usize) -> Option<Vec<GenerationInfo>> {
    if page.len() < SUPER_HEADER + 4 {
        return None;
    }
    let crc_at = page.len() - 4;
    let stored = u32::from_le_bytes(page[crc_at..].try_into().unwrap());
    if stored != crc32(&page[..crc_at]) {
        return None;
    }
    let u64_at = |o: usize| u64::from_le_bytes(page[o..o + 8].try_into().unwrap());
    if u64_at(0) != SUPER_MAGIC {
        return None;
    }
    let n = u32::from_le_bytes(page[12..16].try_into().unwrap()) as usize;
    if n > max_entries {
        return None;
    }
    let mut entries = Vec::with_capacity(n);
    for i in 0..n {
        let o = SUPER_HEADER + i * SUPER_ENTRY;
        entries.push(GenerationInfo {
            generation: u64_at(o),
            parent: u64_at(o + 8),
            start: u64_at(o + 16),
            blocks: u64_at(o + 24),
            fence_lsn: u64_at(o + 32),
            full: u64_at(o + 40) != 0,
        });
    }
    entries.sort_by_key(|e| e.generation);
    Some(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> SnapshotStore {
        SnapshotStore::new(256, TimeScale::ZERO, PersistenceTracking::Full)
    }

    fn image(fill: u8) -> Vec<u8> {
        vec![fill; 256]
    }

    #[test]
    fn write_install_reload_round_trip() {
        let s = store();
        let mut w = s.begin(true, 100);
        w.page_image(7, &image(0xAA)).unwrap();
        w.page_image(9, &image(0xBB)).unwrap();
        w.index_entries(1, &[(1, 10), (2, 20)]).unwrap();
        let info = w
            .finish(
                0,
                12,
                500,
                6,
                vec![TableMeta {
                    id: 1,
                    tuple_size: 64,
                    catalog_head: 2,
                    allocated_slots: 3,
                }],
            )
            .unwrap();
        assert_eq!(info.generation, 1);
        assert!(info.full);

        // A crash after install keeps the generation (everything synced).
        s.simulate_crash();
        s.reload().unwrap();
        assert_eq!(s.newest_valid(), Some(1));

        let mut pages = Vec::new();
        let mut idx = Vec::new();
        let m = s
            .load(
                1,
                |pid, img| pages.push((pid, img[0])),
                |t, e| idx.push((t, e.to_vec())),
            )
            .unwrap();
        assert_eq!(pages, vec![(7, 0xAA), (9, 0xBB)]);
        assert_eq!(idx, vec![(1, vec![(1, 10), (2, 20)])]);
        assert_eq!(m.fence_lsn, 100);
        assert_eq!(m.oracle_ts, 500);
        assert_eq!(m.tables.len(), 1);
    }

    #[test]
    fn uninstalled_generation_vanishes_on_crash() {
        let s = store();
        let mut w = s.begin(true, 0);
        w.page_image(1, &image(1)).unwrap();
        drop(w); // never finished: no superblock update
        s.simulate_crash();
        s.reload().unwrap();
        assert_eq!(s.latest(), None);
        assert_eq!(s.newest_valid(), None);
    }

    #[test]
    fn corrupt_newest_falls_back_a_generation() {
        let s = store();
        s.begin(true, 10).finish(0, 1, 2, 1, Vec::new()).unwrap();
        let mut w = s.begin(false, 20);
        w.page_image(3, &image(3)).unwrap();
        let g2 = w.finish(0, 4, 5, 2, Vec::new()).unwrap();
        assert_eq!(s.newest_valid(), Some(2));

        // Smash a block of generation 2 on the device and make it durable.
        let garbage = vec![0xFFu8; s.page_size];
        s.device().write_page(g2.start, &garbage).unwrap();
        s.device().sync().unwrap();
        assert_eq!(s.newest_valid(), Some(1));
        assert!(!s.validate(2).unwrap());
        assert!(s.validate(1).unwrap());
    }

    #[test]
    fn gc_drops_generations_outside_the_two_newest_chains() {
        let s = store();
        for i in 0..6u64 {
            // Alternate full/incremental so chains stay short.
            let full = i.is_multiple_of(2);
            s.begin(full, i * 10)
                .finish(0, 0, 0, 0, Vec::new())
                .unwrap();
        }
        let gens: Vec<u64> = s.generations().iter().map(|e| e.generation).collect();
        // Newest = 6 (incremental on 5), previous = 5 (full): chains {5,6}.
        assert_eq!(gens, vec![5, 6]);
        assert_eq!(s.newest_valid(), Some(6));
    }

    #[test]
    fn incremental_chain_applies_base_then_deltas() {
        let s = store();
        let mut w = s.begin(true, 0);
        w.page_image(1, &image(0x11)).unwrap();
        w.page_image(2, &image(0x22)).unwrap();
        w.index_entries(1, &[(5, 50)]).unwrap();
        w.finish(0, 3, 9, 1, Vec::new()).unwrap();

        let mut w = s.begin(false, 40);
        w.page_image(2, &image(0x99)).unwrap(); // overwrites base image
        w.index_entries(1, &[(5, 51), (6, 60)]).unwrap();
        w.finish(0, 3, 11, 2, Vec::new()).unwrap();

        let mut latest: std::collections::BTreeMap<u64, u8> = Default::default();
        let mut idx = Vec::new();
        let m = s
            .load(
                2,
                |pid, img| {
                    latest.insert(pid, img[0]);
                },
                |t, e| idx.push((t, e.to_vec())),
            )
            .unwrap();
        assert_eq!(latest.get(&1), Some(&0x11));
        assert_eq!(latest.get(&2), Some(&0x99)); // newer image won
        assert_eq!(idx, vec![(1, vec![(5, 51), (6, 60)])]); // newest gen only
        assert!(!m.full);
        assert_eq!(m.parent, 1);
    }

    #[test]
    fn index_runs_split_across_blocks() {
        let s = store();
        let mut w = s.begin(true, 0);
        // 256-byte payload = 16 entries per block; write 40.
        let entries: Vec<(u64, u64)> = (0..40u64).map(|k| (k, k * 2)).collect();
        w.index_entries(3, &entries).unwrap();
        w.finish(0, 0, 0, 0, Vec::new()).unwrap();
        let mut got = Vec::new();
        s.load(
            1,
            |_, _| {},
            |t, e| {
                assert_eq!(t, 3);
                got.extend_from_slice(e);
            },
        )
        .unwrap();
        assert_eq!(got, entries);
    }
}
