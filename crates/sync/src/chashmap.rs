//! Striped concurrent hash map.
//!
//! The paper uses TBB's `concurrent_hash_map` for the mapping table from
//! logical page ids to shared page descriptors (§5.2 \[17\]). This is the
//! equivalent built from lock-striped `HashMap` shards: simple, contention-
//! resistant (64 shards), and sufficient because mapping-table critical
//! sections are tiny (pointer lookups and inserts).

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};

use crate::lock::RwLock;

/// Number of lock shards; power of two.
const SHARDS: usize = 64;

/// A concurrent hash map with per-shard reader-writer locks.
///
/// Values are returned by clone; in Spitfire `V = Arc<SharedPageDesc>`, so
/// clones are reference-count bumps.
///
/// ```
/// use spitfire_sync::ConcurrentMap;
/// let m: ConcurrentMap<u64, &str> = ConcurrentMap::new();
/// m.insert(1, "page one");
/// assert_eq!(m.get(&1), Some("page one"));
/// assert_eq!(m.get_or_insert_with(2, || "page two"), "page two");
/// assert_eq!(m.remove(&1), Some("page one"));
/// ```
pub struct ConcurrentMap<K, V, S = RandomState> {
    shards: Vec<RwLock<HashMap<K, V, S>>>,
    hasher: S,
}

impl<K: Hash + Eq, V: Clone> ConcurrentMap<K, V> {
    /// An empty map with the default hasher.
    pub fn new() -> Self {
        Self::with_hasher(RandomState::new())
    }
}

impl<K: Hash + Eq, V: Clone> Default for ConcurrentMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Hash + Eq, V: Clone, S: BuildHasher + Clone> ConcurrentMap<K, V, S> {
    /// An empty map using `hasher` for shard selection and within shards.
    pub fn with_hasher(hasher: S) -> Self {
        ConcurrentMap {
            shards: (0..SHARDS)
                .map(|_| RwLock::new(HashMap::with_hasher(hasher.clone())))
                .collect(),
            hasher,
        }
    }

    fn shard(&self, key: &K) -> &RwLock<HashMap<K, V, S>> {
        let h = self.hasher.hash_one(key) as usize;
        &self.shards[h & (SHARDS - 1)]
    }

    /// Clone of the value for `key`, if present.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key).read().get(key).cloned()
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.shard(key).read().contains_key(key)
    }

    /// Insert, returning the previous value if any.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        self.shard(&key).write().insert(key, value)
    }

    /// Remove, returning the value if it was present.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.shard(key).write().remove(key)
    }

    /// Return the existing value for `key`, or insert the one produced by
    /// `make` atomically with respect to other callers of this method:
    /// all callers observe the same stored value.
    ///
    /// Hot keys take only the shard *read* lock, so concurrent lookups of
    /// the same shard proceed in parallel; the exclusive write lock is
    /// taken only on a miss. `make` may run speculatively when two
    /// threads miss concurrently — the loser's value is discarded and the
    /// winner's returned — so `make` must be side-effect free. Running it
    /// outside the write critical section keeps the exclusive hold to a
    /// re-probe and an insert.
    pub fn get_or_insert_with(&self, key: K, make: impl FnOnce() -> V) -> V {
        let shard = self.shard(&key);
        if let Some(v) = shard.read().get(&key) {
            return v.clone();
        }
        let value = make();
        let mut guard = shard.write();
        // Mutant MapUpgradeNoRecheck skips the re-probe under the write
        // lock: two racing missers then install distinct values and
        // disagree on the page's descriptor, which the read-lock-upgrade
        // model check asserts against.
        #[cfg(spitfire_modelcheck)]
        if spitfire_modelcheck::mutation_active(spitfire_modelcheck::Mutation::MapUpgradeNoRecheck)
        {
            guard.insert(key, value.clone());
            return value;
        }
        guard.entry(key).or_insert_with(|| value).clone()
    }

    /// Remove `key` only if `pred` holds for its current value. Returns the
    /// removed value. The predicate runs under the shard's write lock.
    pub fn remove_if(&self, key: &K, pred: impl FnOnce(&V) -> bool) -> Option<V> {
        let mut guard = self.shard(key).write();
        if guard.get(key).is_some_and(pred) {
            guard.remove(key)
        } else {
            None
        }
    }

    /// Number of entries (sums shard sizes; a snapshot, not linearizable).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the map is empty (snapshot semantics, as with `len`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Run `f` on every entry. Each shard is locked (shared) in turn; do not
    /// call map methods from inside `f`.
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        for shard in &self.shards {
            for (k, v) in shard.read().iter() {
                f(k, v);
            }
        }
    }

    /// Remove all entries.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
    }
}

impl<K, V, S> std::fmt::Debug for ConcurrentMap<K, V, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentMap").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_insert_get_remove() {
        let m: ConcurrentMap<u64, String> = ConcurrentMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(1, "one".into()), None);
        assert_eq!(m.insert(1, "uno".into()), Some("one".into()));
        assert_eq!(m.get(&1), Some("uno".into()));
        assert!(m.contains(&1));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(&1), Some("uno".into()));
        assert_eq!(m.get(&1), None);
    }

    #[test]
    fn get_or_insert_with_is_once_per_key() {
        let m: ConcurrentMap<u64, Arc<u64>> = ConcurrentMap::new();
        let a = m.get_or_insert_with(5, || Arc::new(50));
        let b = m.get_or_insert_with(5, || Arc::new(99));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(*a, 50);
    }

    #[test]
    fn remove_if_respects_predicate() {
        let m: ConcurrentMap<u64, u64> = ConcurrentMap::new();
        m.insert(1, 10);
        assert_eq!(m.remove_if(&1, |v| *v > 100), None);
        assert!(m.contains(&1));
        assert_eq!(m.remove_if(&1, |v| *v == 10), Some(10));
        assert!(!m.contains(&1));
        assert_eq!(m.remove_if(&2, |_| true), None);
    }

    #[test]
    fn for_each_visits_all() {
        let m: ConcurrentMap<u64, u64> = ConcurrentMap::new();
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        let mut sum = 0;
        m.for_each(|_, v| sum += v);
        assert_eq!(sum, (0..100).map(|i| i * 2).sum::<u64>());
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn concurrent_inserts_distinct_keys() {
        let m: Arc<ConcurrentMap<u64, u64>> = Arc::new(ConcurrentMap::new());
        const THREADS: u64 = 8;
        const PER: u64 = if cfg!(miri) { 50 } else { 500 };
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..PER {
                        m.insert(t * PER + i, t);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.len() as u64, THREADS * PER);
        for t in 0..THREADS {
            for i in 0..PER {
                assert_eq!(m.get(&(t * PER + i)), Some(t));
            }
        }
    }

    #[test]
    fn concurrent_get_or_insert_same_key_agrees() {
        let m: Arc<ConcurrentMap<u64, Arc<u64>>> = Arc::new(ConcurrentMap::new());
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || m.get_or_insert_with(7, move || Arc::new(t)))
            })
            .collect();
        let results: Vec<Arc<u64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for r in &results {
            assert!(Arc::ptr_eq(r, &results[0]));
        }
    }
}
