//! Canonical CRC-32 (IEEE) for every Spitfire framing format.
//!
//! One checksum, one implementation: snapshot block headers, WAL record
//! framing, and the server wire protocol all call this [`crc32`]. It lives
//! in `spitfire-sync` — the lowest shared crate — so none of those
//! consumers needs the others just for a checksum (the historical chain
//! re-exported it from `spitfire-snapshot` through `spitfire_txn::wal`).

/// CRC-32 slicing-by-8 tables (IEEE polynomial), built at compile time.
/// `CRC32_TABLES[0]` is the classic one-byte table; table `k` advances a
/// byte that sits `k` positions deeper in an 8-byte group.
const CRC32_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
};

/// CRC-32 (IEEE, slicing-by-8). Recovery checksums every block of a
/// snapshot chain and every WAL record, so this sits on the restart path:
/// a byte-at-a-time implementation is latency-bound on the table lookup
/// chain and would dominate instant-restart time. Eight parallel tables
/// break that dependency. This is the one checksum used by the snapshot
/// blocks, the WAL framing, and the server wire protocol.
pub fn crc32(data: &[u8]) -> u32 {
    let t = &CRC32_TABLES;
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let x = crc ^ u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        crc = t[7][(x & 0xFF) as usize]
            ^ t[6][((x >> 8) & 0xFF) as usize]
            ^ t[5][((x >> 16) & 0xFF) as usize]
            ^ t[4][(x >> 24) as usize]
            ^ t[3][c[4] as usize]
            ^ t[2][c[5] as usize]
            ^ t[1][c[6] as usize]
            ^ t[0][c[7] as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::crc32;

    /// Bitwise reference implementation (the original one).
    fn crc32_ref(data: &[u8]) -> u32 {
        let mut crc = 0xFFFF_FFFFu32;
        for &b in data {
            crc ^= b as u32;
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
        !crc
    }

    #[test]
    fn known_answer() {
        // The canonical CRC-32/IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn matches_bitwise_reference_at_every_alignment() {
        let data: Vec<u8> = (0..1024u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        for start in 0..8 {
            for len in [0, 1, 7, 8, 9, 63, 64, 65, 255, 1000] {
                let slice = &data[start..start + len];
                assert_eq!(crc32(slice), crc32_ref(slice), "start {start} len {len}");
            }
        }
    }
}
