//! Concurrent bitmap over atomic words.
//!
//! Backs the CLOCK replacement policy's reference bits and the buffer
//! pools' frame allocation maps (paper §5.2 cites NB-GCLOCK's non-blocking
//! bitmap \[40\]; this is the same idea: all bit operations are single-word
//! atomics, so the clock hand never takes a lock).

use crate::atomic::{AtomicU64, Ordering};

const BITS: usize = 64;

/// A fixed-size bitmap whose bits can be set, cleared, and scanned
/// concurrently without locks.
///
/// ```
/// use spitfire_sync::AtomicBitmap;
/// let frames = AtomicBitmap::new(128);
/// let f = frames.acquire_first_clear(0).unwrap(); // claim a free frame
/// assert!(frames.get(f));
/// frames.clear(f);                                // release it
/// assert_eq!(frames.count_ones(), 0);
/// ```
pub struct AtomicBitmap {
    words: Vec<AtomicU64>,
    len: usize,
    /// Physical words allocated per logical 64-bit word: 1 for the dense
    /// layout, [`PAD_STRIDE`] to give each logical word its own cache line.
    stride: usize,
}

/// Stride (in `u64` words) that places each logical word on its own
/// 64-byte cache line.
const PAD_STRIDE: usize = crate::CACHE_LINE / std::mem::size_of::<u64>();

impl AtomicBitmap {
    /// A bitmap of `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        Self::with_stride(len, 1)
    }

    /// A bitmap of `len` bits where every 64-bit word sits on its own
    /// cache line.
    ///
    /// Costs 8x the (tiny) dense footprint — one byte per bit instead of
    /// one bit — and in exchange concurrent writers of nearby bits never
    /// bounce a shared line. Used for the CLOCK reference bits, which the
    /// lock-free hit path sets on every buffer hit.
    pub fn new_padded(len: usize) -> Self {
        Self::with_stride(len, PAD_STRIDE)
    }

    fn with_stride(len: usize, stride: usize) -> Self {
        AtomicBitmap {
            words: (0..len.div_ceil(BITS) * stride)
                .map(|_| AtomicU64::new(0))
                .collect(),
            len,
            stride,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn locate(&self, bit: usize) -> (usize, u64) {
        assert!(
            bit < self.len,
            "bit {bit} out of range for bitmap of {}",
            self.len
        );
        ((bit / BITS) * self.stride, 1u64 << (bit % BITS))
    }

    /// Set `bit`; returns the previous value.
    pub fn set(&self, bit: usize) -> bool {
        let (w, mask) = self.locate(bit);
        // Mutant BitmapSetSplit tears the RMW into load-then-store; the
        // touch-vs-sweep model check must catch the lost update (a touch
        // or a concurrent frame acquisition silently erased).
        #[cfg(spitfire_modelcheck)]
        if spitfire_modelcheck::mutation_active(spitfire_modelcheck::Mutation::BitmapSetSplit) {
            let cur = self.words[w].load(Ordering::Acquire);
            self.words[w].store(cur | mask, Ordering::Release);
            return cur & mask != 0;
        }
        self.words[w].fetch_or(mask, Ordering::AcqRel) & mask != 0
    }

    /// Clear `bit`; returns the previous value.
    pub fn clear(&self, bit: usize) -> bool {
        let (w, mask) = self.locate(bit);
        self.words[w].fetch_and(!mask, Ordering::AcqRel) & mask != 0
    }

    /// Current value of `bit`.
    pub fn get(&self, bit: usize) -> bool {
        let (w, mask) = self.locate(bit);
        self.words[w].load(Ordering::Acquire) & mask != 0
    }

    /// Atomically set `bit` if it is currently clear. Returns `true` if this
    /// call performed the transition (i.e. won the race). Used for lock-free
    /// frame allocation.
    pub fn try_acquire(&self, bit: usize) -> bool {
        let (w, mask) = self.locate(bit);
        self.words[w].fetch_or(mask, Ordering::AcqRel) & mask == 0
    }

    /// Find and acquire the first clear bit at or after `from` (wrapping),
    /// or `None` if every bit is set. Lock-free; linear in words.
    pub fn acquire_first_clear(&self, from: usize) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let start_word = (from % self.len) / BITS;
        let nwords = self.words.len() / self.stride;
        for i in 0..nwords {
            let w = (start_word + i) % nwords;
            loop {
                let cur = self.words[w * self.stride].load(Ordering::Acquire);
                let free = !cur;
                if free == 0 {
                    break;
                }
                let bit_in_word = free.trailing_zeros() as usize;
                let bit = w * BITS + bit_in_word;
                if bit >= self.len {
                    break;
                }
                if self.try_acquire(bit) {
                    return Some(bit);
                }
                // Lost the race; re-read the word.
            }
        }
        None
    }

    /// Number of set bits (snapshot).
    pub fn count_ones(&self) -> usize {
        self.words
            .iter()
            .step_by(self.stride)
            .map(|w| w.load(Ordering::Acquire).count_ones() as usize)
            .sum()
    }

    /// Clear every bit.
    pub fn clear_all(&self) {
        for w in self.words.iter().step_by(self.stride) {
            w.store(0, Ordering::Release);
        }
    }
}

impl std::fmt::Debug for AtomicBitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicBitmap")
            .field("len", &self.len)
            .field("ones", &self.count_ones())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn set_get_clear() {
        let b = AtomicBitmap::new(130);
        assert!(!b.get(0));
        assert!(!b.set(0));
        assert!(b.get(0));
        assert!(b.set(0));
        assert!(b.clear(0));
        assert!(!b.get(0));
        assert!(!b.clear(0));
        // Bits across word boundaries.
        assert!(!b.set(63));
        assert!(!b.set(64));
        assert!(!b.set(129));
        assert_eq!(b.count_ones(), 3);
        b.clear_all();
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let b = AtomicBitmap::new(10);
        b.get(10);
    }

    #[test]
    fn acquire_first_clear_exhausts_exactly_once() {
        let b = AtomicBitmap::new(8);
        let mut got = Vec::new();
        while let Some(bit) = b.acquire_first_clear(5) {
            got.push(bit);
        }
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        assert_eq!(b.acquire_first_clear(0), None);
    }

    #[test]
    fn acquire_first_clear_starts_near_hint() {
        // 256 bits = 4 words; a hint in word 2 should yield a bit from
        // word 2 first (the hint is word-granular).
        let b = AtomicBitmap::new(256);
        let bit = b.acquire_first_clear(130).unwrap();
        assert_eq!(bit, 128);
    }

    #[test]
    fn try_acquire_races_have_one_winner() {
        let b = Arc::new(AtomicBitmap::new(64));
        let winners = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let b = Arc::clone(&b);
                let winners = Arc::clone(&winners);
                std::thread::spawn(move || {
                    if b.try_acquire(7) {
                        winners.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(winners.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn concurrent_acquire_all_distinct() {
        const N: usize = if cfg!(miri) { 64 } else { 256 };
        let b = Arc::new(AtomicBitmap::new(N));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    for _ in 0..N / 8 {
                        got.push(b.acquire_first_clear(t * 13).expect("capacity available"));
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), N, "every acquired bit must be unique");
        assert_eq!(b.count_ones(), N);
        assert_eq!(b.acquire_first_clear(0), None);
    }

    #[test]
    fn padded_layout_behaves_like_dense() {
        let b = AtomicBitmap::new_padded(130);
        assert_eq!(b.len(), 130);
        assert!(!b.set(0));
        assert!(!b.set(63));
        assert!(!b.set(64));
        assert!(!b.set(129));
        assert_eq!(b.count_ones(), 4);
        assert!(b.get(64));
        assert!(b.clear(64));
        assert_eq!(b.count_ones(), 3);
        b.clear_all();
        assert_eq!(b.count_ones(), 0);
        let mut got = Vec::new();
        while let Some(bit) = b.acquire_first_clear(68) {
            got.push(bit);
        }
        got.sort_unstable();
        assert_eq!(got, (0..130).collect::<Vec<_>>());
    }

    #[test]
    fn acquire_respects_length_not_word_capacity() {
        // 70 bits uses two words but bits 70..127 must never be returned.
        let b = AtomicBitmap::new(70);
        let mut seen = Vec::new();
        while let Some(bit) = b.acquire_first_clear(0) {
            assert!(bit < 70);
            seen.push(bit);
        }
        assert_eq!(seen.len(), 70);
    }
}
