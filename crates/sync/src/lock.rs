//! The lock facade: parking_lot in normal builds, the model-aware shims
//! under `--cfg spitfire_modelcheck` (which make blocking, contention and
//! lock-order deadlocks explorable by the checker).
//!
//! Companion to [`crate::atomic`]; see that module for the rationale.

#[cfg(not(spitfire_modelcheck))]
pub use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(spitfire_modelcheck)]
pub use spitfire_modelcheck::lock::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
