//! HyMem-style NVM admission queue (paper §1, §2.1, §6.5).
//!
//! HyMem decides NVM admission with a queue of "recently considered" pages:
//! the first time a page is considered it is *denied* (its id is enqueued
//! and the page goes straight to SSD); if it is considered again while its
//! id is still in the queue, it is admitted. The queue is bounded; the paper
//! finds that a capacity of half the NVM buffer's page count works well
//! (§6.5, "Admission Queue Size").
//!
//! Spitfire replaces this mechanism with the probabilistic `N_w` policy, but
//! the baseline needs a faithful implementation for the ablation study
//! (Figure 12).

use std::collections::{HashSet, VecDeque};

use crate::lock::Mutex;

struct Inner {
    fifo: VecDeque<u64>,
    members: HashSet<u64>,
}

/// Bounded FIFO admission filter keyed by page id.
pub struct AdmissionQueue {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl AdmissionQueue {
    /// A queue remembering at most `capacity` recently denied pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a zero-capacity queue would deny every
    /// page forever, which is never what the baseline wants).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "admission queue capacity must be positive");
        AdmissionQueue {
            inner: Mutex::new(Inner {
                fifo: VecDeque::with_capacity(capacity),
                members: HashSet::with_capacity(capacity),
            }),
            capacity,
        }
    }

    /// Consider `pid` for admission. Returns `true` if the page should be
    /// admitted now (it was recently considered), `false` if it was enqueued
    /// and should bypass the NVM buffer this time.
    pub fn consider(&self, pid: u64) -> bool {
        let mut inner = self.inner.lock();
        if inner.members.remove(&pid) {
            // Second consideration while still remembered: admit. Leave the
            // stale id in the FIFO; it is skipped lazily on eviction.
            return true;
        }
        // Make room: stale FIFO slots (ids admitted earlier) are reclaimed
        // for free; otherwise the oldest live id is evicted (forgotten).
        while inner.fifo.len() >= self.capacity {
            let Some(old) = inner.fifo.pop_front() else {
                break;
            };
            if inner.members.remove(&old) {
                break;
            }
        }
        inner.fifo.push_back(pid);
        inner.members.insert(pid);
        false
    }

    /// Number of pages currently remembered (denied once, not yet admitted).
    pub fn len(&self) -> usize {
        self.inner.lock().members.len()
    }

    /// Whether no pages are remembered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Forget every remembered page.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.fifo.clear();
        inner.members.clear();
    }
}

impl std::fmt::Debug for AdmissionQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionQueue")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_denied_second_admitted() {
        let q = AdmissionQueue::new(4);
        assert!(!q.consider(1));
        assert!(q.consider(1));
        // After admission the page starts over.
        assert!(!q.consider(1));
    }

    #[test]
    fn capacity_evicts_oldest() {
        let q = AdmissionQueue::new(2);
        assert!(!q.consider(1));
        assert!(!q.consider(2));
        assert!(!q.consider(3)); // evicts 1
        assert!(!q.consider(1)); // 1 was forgotten: denied again (evicts 2)
        assert!(q.consider(3)); // 3 still remembered
    }

    #[test]
    fn admitted_ids_do_not_consume_capacity() {
        let q = AdmissionQueue::new(2);
        assert!(!q.consider(1));
        assert!(q.consider(1)); // admitted; stale FIFO slot remains
        assert!(!q.consider(2));
        assert!(!q.consider(3));
        // Queue holds {2, 3}: both must still be remembered because the
        // stale slot for 1 was reclaimed first.
        assert!(q.consider(2));
        assert!(q.consider(3));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        AdmissionQueue::new(0);
    }

    #[test]
    fn len_and_clear() {
        let q = AdmissionQueue::new(8);
        for pid in 0..5 {
            q.consider(pid);
        }
        assert_eq!(q.len(), 5);
        q.clear();
        assert!(q.is_empty());
        assert!(!q.consider(0));
    }

    #[test]
    fn concurrent_considers_never_lose_ids() {
        use std::sync::Arc;
        const PER: u64 = if cfg!(miri) { 20 } else { 200 };
        let q = Arc::new(AdmissionQueue::new(1024));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut admitted = 0u64;
                    for i in 0..PER {
                        let pid = t * 1000 + i;
                        assert!(!q.consider(pid), "first consideration must deny");
                        if q.consider(pid) {
                            admitted += 1;
                        }
                    }
                    admitted
                })
            })
            .collect();
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        // Capacity is ample, so every second consideration admits.
        assert_eq!(total, 4 * PER);
    }
}
