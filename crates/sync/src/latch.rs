//! Lightweight reader-writer latch.
//!
//! Spitfire's shared page descriptors carry one latch per storage tier
//! (paper §5.2, Figure 4); migrations grab only the latches of the tiers
//! they touch, so latch acquisition must be cheap and the latch itself small
//! (one word). This is a classic word-sized latch: writer bit plus reader
//! count, with yielding backoff — appropriate for the short critical
//! sections of page migration bookkeeping (the actual device I/O is charged
//! while holding the latch, exactly like the paper's migration protocol).

use crate::atomic::{AtomicU32, Ordering};

const WRITER: u32 = 1 << 31;

/// A word-sized reader-writer latch without poisoning or fairness queues.
///
/// ```
/// use spitfire_sync::RwLatch;
/// let latch = RwLatch::new();
/// let r1 = latch.read();
/// let r2 = latch.read();          // readers share
/// assert!(latch.try_write().is_none());
/// drop((r1, r2));
/// let _w = latch.write();         // writer excludes
/// assert!(latch.try_read().is_none());
/// ```
#[derive(Debug, Default)]
pub struct RwLatch {
    state: AtomicU32,
}

impl RwLatch {
    /// A fresh, unheld latch.
    pub const fn new() -> Self {
        RwLatch {
            state: AtomicU32::new(0),
        }
    }

    /// Try to acquire shared access without blocking.
    pub fn try_read(&self) -> Option<LatchReadGuard<'_>> {
        // relaxed: both the seed load and the CAS failure order are mere
        // hints; only the successful acquire CAS carries ordering.
        let mut cur = self.state.load(Ordering::Relaxed);
        loop {
            if cur & WRITER != 0 {
                return None;
            }
            match self.state.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Acquire,
                Ordering::Relaxed, // relaxed: failed CAS just re-seeds the loop
            ) {
                Ok(_) => return Some(LatchReadGuard { latch: self }),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Acquire shared access, yielding while a writer holds the latch.
    pub fn read(&self) -> LatchReadGuard<'_> {
        let mut spins = 0u32;
        loop {
            if let Some(g) = self.try_read() {
                return g;
            }
            backoff(&mut spins);
        }
    }

    /// Try to acquire exclusive access without blocking.
    pub fn try_write(&self) -> Option<LatchWriteGuard<'_>> {
        // relaxed: failure is a pure backoff signal; the acquire on
        // success is what orders the critical section.
        if self
            .state
            .compare_exchange(0, WRITER, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Some(LatchWriteGuard { latch: self })
        } else {
            None
        }
    }

    /// Acquire exclusive access, yielding while readers or a writer hold it.
    pub fn write(&self) -> LatchWriteGuard<'_> {
        let mut spins = 0u32;
        loop {
            if let Some(g) = self.try_write() {
                return g;
            }
            backoff(&mut spins);
        }
    }

    /// Whether any thread currently holds the latch (racy; diagnostics only).
    pub fn is_held(&self) -> bool {
        // relaxed: advisory snapshot; the answer is stale by the time the
        // caller acts on it regardless of ordering.
        self.state.load(Ordering::Relaxed) != 0
    }
}

#[inline]
fn backoff(spins: &mut u32) {
    *spins += 1;
    if *spins < 16 {
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

/// Shared guard; releases on drop.
#[derive(Debug)]
pub struct LatchReadGuard<'a> {
    latch: &'a RwLatch,
}

impl Drop for LatchReadGuard<'_> {
    fn drop(&mut self) {
        self.latch.state.fetch_sub(1, Ordering::Release);
    }
}

/// Exclusive guard; releases on drop.
#[derive(Debug)]
pub struct LatchWriteGuard<'a> {
    latch: &'a RwLatch,
}

impl Drop for LatchWriteGuard<'_> {
    fn drop(&mut self) {
        self.latch.state.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn readers_share_writers_exclude() {
        let l = RwLatch::new();
        let r1 = l.try_read().expect("first reader");
        let r2 = l.try_read().expect("second reader");
        assert!(l.try_write().is_none());
        drop(r1);
        assert!(l.try_write().is_none());
        drop(r2);
        let w = l.try_write().expect("writer after readers");
        assert!(l.try_read().is_none());
        assert!(l.try_write().is_none());
        drop(w);
        assert!(!l.is_held());
    }

    #[test]
    fn concurrent_counter_is_exact() {
        struct Cell(std::cell::UnsafeCell<u64>);
        // SAFETY: the test only touches the cell under the latch.
        unsafe impl Sync for Cell {}
        let latch = Arc::new(RwLatch::new());
        let counter = Arc::new(Cell(std::cell::UnsafeCell::new(0)));
        const THREADS: usize = 8;
        const PER: u64 = if cfg!(miri) { 50 } else { 1000 };
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let latch = Arc::clone(&latch);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..PER {
                        let _g = latch.write();
                        // SAFETY: exclusive latch held.
                        unsafe { *counter.0.get() += 1 };
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let _g = latch.read();
        // SAFETY: shared latch held, writers excluded.
        assert_eq!(unsafe { *counter.0.get() }, THREADS as u64 * PER);
    }

    #[test]
    fn read_blocks_until_writer_leaves() {
        let latch = Arc::new(RwLatch::new());
        let w = latch.try_write().unwrap();
        let l2 = Arc::clone(&latch);
        let t = std::thread::spawn(move || {
            let _r = l2.read();
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(!t.is_finished());
        drop(w);
        t.join().unwrap();
    }
}
