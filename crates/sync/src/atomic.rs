//! The atomics facade: `std::sync::atomic` in normal builds, the
//! instrumented spitfire-modelcheck shims under `--cfg spitfire_modelcheck`.
//!
//! Every protocol module in this crate (and the hot-path modules in
//! spitfire-core) imports atomics from here instead of `std` directly —
//! `cargo xtask lint` enforces it. That single import switch is what lets
//! the model-check test suite drive the *production* protocol code, not a
//! copy, through exhaustive interleaving exploration.
//!
//! In normal builds this module is a pure re-export: same types, same
//! codegen, zero cost.

#[cfg(not(spitfire_modelcheck))]
pub use std::sync::atomic::*;

#[cfg(spitfire_modelcheck)]
pub use spitfire_modelcheck::atomic::*;
