//! Optimistic pin word for latch-free buffer pins (paper §5.2).
//!
//! A [`PinWord`] lets readers pin a resident page copy without taking the
//! page's descriptor mutex, in the style of LeanStore/Umbra optimistic
//! latching: the slow path (migrations, evictions — always under the
//! descriptor mutex) *opens* the word while the copy is stably resident
//! and *closes* it before any state transition. Readers pin with a single
//! CAS that only succeeds against an open word, so a successful pin proves
//! the copy was resident — and stays resident, because every transition
//! must first close the word and observe a zero optimistic pin count.
//!
//! # Word layout
//!
//! One `AtomicU64` packs the whole protocol state:
//!
//! ```text
//! 63        33 32 31                    0
//! +-----------+--+----------------------+
//! |  version  |O |  optimistic pins     |
//! +-----------+--+----------------------+
//! ```
//!
//! * bits 0..32 — count of outstanding optimistic pins;
//! * bit 32 — OPEN: optimistic pins may be taken;
//! * bits 33.. — version, bumped by every open/close so a reader's CAS
//!   (which covers the *entire* word) fails if the copy was closed and
//!   re-opened between its load and its CAS. That makes the payload read
//!   in between — the frame id of the resident copy — valid on success.
//!
//! # Protocol
//!
//! * `open(frame)` / `close()` are called only by the slow path, under the
//!   descriptor mutex; they are the only writers of the OPEN and version
//!   bits.
//! * `try_pin()` / `unpin()` are lock-free and may be called by any
//!   thread at any time.
//! * `close()` returns the number of optimistic pins at the instant the
//!   word closed. Because the close CAS and every pin CAS contend on the
//!   same word, a return of zero proves no optimistic pin exists *and*
//!   none can be created until the word is re-opened — the transition may
//!   proceed. Non-zero means readers are still draining: the caller must
//!   re-open and retry later (evictions simply skip the victim).
//!
//! The theoretical ABA window — a full 31-bit version wrap between one
//! reader's load and CAS — would require ~2³¹ open/close cycles while a
//! single pin attempt is suspended, which the slow path's mutex
//! serialization makes unreachable in practice.

use crate::atomic::{AtomicU32, AtomicU64, Ordering};

/// Low 32 bits: optimistic pin count.
const PIN_MASK: u64 = (1 << 32) - 1;
/// Bit 32: the word is open for optimistic pins.
const OPEN: u64 = 1 << 32;
/// Version counter step (bits 33..).
const VERSION_STEP: u64 = 1 << 33;

/// Version snapshot taken by [`PinWord::shadow_begin`]; consumed by
/// [`PinWord::shadow_commit`] or [`PinWord::shadow_still_clean`].
///
/// Not `Clone`/`Copy` on purpose: a token witnesses exactly one
/// begin→commit attempt, and an aborted attempt must re-begin.
#[derive(Debug)]
pub struct ShadowToken {
    version: u64,
}

impl ShadowToken {
    /// The version recorded at `shadow_begin` (diagnostics and tests).
    pub fn version(&self) -> u64 {
        self.version
    }
}

/// Outcome of a [`PinWord::shadow_commit`] attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShadowOutcome {
    /// The word is closed, no optimistic pins remain, and no write
    /// intervened since `shadow_begin`: the shadow copy is faithful and
    /// the caller may install it and retire the source copy.
    Committed,
    /// A writer bumped the version during the copy window — the shadow
    /// copy may be stale. The word is left *closed*; the caller must
    /// re-open it (abort) or restart the copy.
    RacedWrite,
    /// Optimistic pins did not drain within the spin budget. The word is
    /// left *closed*; the caller must re-open it (abort) and retry later.
    /// A pinned writer that has not yet recorded its write blocks on the
    /// descriptor mutex the caller holds, so an unbounded wait here would
    /// deadlock — the budget is what makes the protocol abort instead.
    Draining,
}

/// Outcome of one optimistic pin attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PinAttempt {
    /// The pin was taken; the payload (frame id) identifies the copy.
    Pinned(u32),
    /// The word was closed the whole time — the copy is absent or the
    /// caller must use the slow path.
    Closed,
    /// The word was open when first observed but closed before the pin
    /// CAS succeeded: a transition raced the reader, who must restart
    /// into the slow path.
    Raced,
}

/// Seqlock-style version-plus-pin word (see module docs).
#[derive(Debug, Default)]
pub struct PinWord {
    word: AtomicU64,
    /// Frame id of the resident copy; valid while the word is open.
    /// Written before the opening CAS (ordered by its `Release`), read
    /// between a pinner's load and CAS (validated by the CAS itself).
    payload: AtomicU32,
}

impl PinWord {
    /// A closed word with no pins.
    pub const fn new() -> Self {
        PinWord {
            word: AtomicU64::new(0),
            payload: AtomicU32::new(0),
        }
    }

    /// Attempt to take one optimistic pin. Lock-free; never blocks.
    ///
    /// On [`PinAttempt::Pinned`] the returned payload is the frame id the
    /// slow path stored in the `open` call this pin was granted against.
    pub fn try_pin(&self) -> PinAttempt {
        // Mutant PinBlindPin replaces the full-word CAS below with a
        // check-then-increment, losing the "no pin lands after close
        // observed zero" guarantee; the eviction-vs-pin model check must
        // catch the pin that slips in after quiescence was claimed.
        #[cfg(spitfire_modelcheck)]
        if spitfire_modelcheck::mutation_active(spitfire_modelcheck::Mutation::PinBlindPin) {
            let w = self.word.load(Ordering::Acquire);
            if w & OPEN == 0 {
                return PinAttempt::Closed;
            }
            // relaxed: mutant code — the breakage under test is the
            // missing full-word CAS, not this payload read.
            let payload = self.payload.load(Ordering::Relaxed);
            self.word.fetch_add(1, Ordering::AcqRel);
            return PinAttempt::Pinned(payload);
        }
        let mut w = self.word.load(Ordering::Acquire);
        let was_open = w & OPEN != 0;
        loop {
            if w & OPEN == 0 {
                return if was_open {
                    PinAttempt::Raced
                } else {
                    PinAttempt::Closed
                };
            }
            debug_assert!(w & PIN_MASK < PIN_MASK, "optimistic pin count overflow");
            // relaxed: the CAS below validates this read — if the word
            // changed (close, or close + re-open with a different frame)
            // the CAS fails and we re-read. The acquire load above pairs
            // with `open`'s release CAS, making this payload store
            // visible.
            let payload = self.payload.load(Ordering::Relaxed);
            match self
                .word
                .compare_exchange_weak(w, w + 1, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return PinAttempt::Pinned(payload),
                Err(cur) => w = cur,
            }
        }
    }

    /// Drop one optimistic pin. Lock-free.
    ///
    /// A no-op when the count is already zero: after a simulated crash the
    /// descriptor a guard pinned may have been discarded and re-created,
    /// so a late unpin must never underflow into the OPEN/version bits.
    /// (The mutex pin path has the same tolerance via `saturating_sub`.)
    pub fn unpin(&self) {
        // relaxed: just a CAS seed; the CAS validates the value and
        // carries the ordering.
        let mut w = self.word.load(Ordering::Relaxed);
        loop {
            if w & PIN_MASK == 0 {
                return;
            }
            // Release: the reader's page accesses happen-before a closer
            // observing the decremented count. (Mutant PinUnpinRelaxed
            // drops the release; the quiescence model check must then see
            // the reader's page access race the transition.)
            // relaxed: the weak arm is the seeded mutant; the CAS
            // failure order is a plain re-read of the seed.
            let success = mutant_ordering!(PinUnpinRelaxed, Ordering::Release, Ordering::Relaxed);
            match self
                .word
                .compare_exchange_weak(w, w - 1, success, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(cur) => w = cur,
            }
        }
    }

    /// Open the word for optimistic pins against `frame`. Slow path only
    /// (descriptor mutex held). Idempotent: re-opening an open word only
    /// refreshes the payload.
    pub fn open(&self, frame: u32) {
        // relaxed: the payload store is published by the opening CAS's
        // release below; the word load is just a CAS seed.
        self.payload.store(frame, Ordering::Relaxed);
        let mut w = self.word.load(Ordering::Relaxed);
        loop {
            if w & OPEN != 0 {
                return;
            }
            let new = (w | OPEN).wrapping_add(VERSION_STEP);
            // Release publishes the payload store above to pinners whose
            // acquire load sees the OPEN bit. (Mutant PinOpenRelaxed drops
            // the release; a pinner may then read a stale frame id, which
            // the pin model check asserts against.)
            // relaxed: the weak arm is the seeded mutant; the CAS
            // failure order is a plain re-read of the seed.
            let success = mutant_ordering!(PinOpenRelaxed, Ordering::Release, Ordering::Relaxed);
            match self
                .word
                .compare_exchange_weak(w, new, success, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(cur) => w = cur,
            }
        }
    }

    /// Close the word and return the optimistic pin count at that instant.
    /// Slow path only (descriptor mutex held). Idempotent: closing a
    /// closed word returns the current count without bumping the version.
    ///
    /// A return of zero proves the copy has no optimistic pins and can
    /// acquire none until re-opened; non-zero means readers are draining
    /// and the caller must re-open (abort the transition) or retry.
    pub fn close(&self) -> u32 {
        let mut w = self.word.load(Ordering::Acquire);
        loop {
            if w & OPEN == 0 {
                return (w & PIN_MASK) as u32;
            }
            let new = (w & !OPEN).wrapping_add(VERSION_STEP);
            // AcqRel: acquire pairs with draining unpins' release (their
            // page reads happen-before a zero count observed here).
            // (Mutant PinCloseRelaxed drops both sides; the quiescence
            // model check must then see the last reader's page access race
            // the transition that trusted the zero count.)
            // relaxed: the weak arm is the seeded mutant only.
            let success = mutant_ordering!(PinCloseRelaxed, Ordering::AcqRel, Ordering::Relaxed);
            match self
                .word
                .compare_exchange_weak(w, new, success, Ordering::Acquire)
            {
                Ok(prev) => return (prev & PIN_MASK) as u32,
                Err(cur) => w = cur,
            }
        }
    }

    /// Bump the version without touching the OPEN bit or the pin count —
    /// the write-end marker of the shadow-copy protocol. Called (under
    /// the descriptor mutex) when a writer finishes mutating the copy's
    /// bytes, so a concurrent [`PinWord::shadow_commit`] observes that
    /// its copy raced a write and aborts.
    pub fn bump_version(&self) {
        // AcqRel: the writer's byte stores happen-before any commit that
        // observes the bumped version (the descriptor mutex also orders
        // the two, but the word must not be weaker than its observers).
        self.word.fetch_add(VERSION_STEP, Ordering::AcqRel);
    }

    /// Begin a shadow copy of the resident copy this word protects:
    /// record the current version *without closing the word*, so
    /// optimistic readers keep hitting the source copy while the caller
    /// copies it into the destination tier. Slow path only (descriptor
    /// mutex held). Returns `None` if the word is closed (no stably
    /// resident copy to shadow).
    pub fn shadow_begin(&self) -> Option<ShadowToken> {
        let w = self.word.load(Ordering::Acquire);
        if w & OPEN == 0 {
            return None;
        }
        Some(ShadowToken {
            version: w / VERSION_STEP,
        })
    }

    /// Attempt to commit a shadow copy begun with [`PinWord::shadow_begin`]:
    /// close the word (stopping new optimistic pins), verify no write
    /// bumped the version during the copy window, and wait up to
    /// `spin_budget` iterations for outstanding optimistic pins to drain.
    /// Slow path only (descriptor mutex held).
    ///
    /// On [`ShadowOutcome::Committed`] the word is closed with zero pins:
    /// the copy is proven faithful and quiescent, and the caller installs
    /// the shadow copy / retires the source. On the two failure outcomes
    /// the word is also left closed and the caller must re-open it to
    /// abort (see each variant's docs). The version check is what makes
    /// the copy *transactional*: a writer's `bump_version` between begin
    /// and commit invalidates the token, because the bytes the caller
    /// copied may predate that write.
    pub fn shadow_commit(&self, token: &ShadowToken, spin_budget: u32) -> ShadowOutcome {
        let mut pins = self.close();
        // Mutant ShadowSkipVersionCheck drops the staleness test below:
        // a copy that raced a writer then commits anyway, and the shadow
        // protocol model check must observe the lost update.
        #[cfg(spitfire_modelcheck)]
        let skip_check = spitfire_modelcheck::mutation_active(
            spitfire_modelcheck::Mutation::ShadowSkipVersionCheck,
        );
        #[cfg(not(spitfire_modelcheck))]
        let skip_check = false;
        // The close above bumped the version exactly once; any other
        // delta means a writer (or a foreign transition) intervened.
        let expected = token.version.wrapping_add(1);
        if !skip_check && self.word.load(Ordering::Acquire) / VERSION_STEP != expected {
            return ShadowOutcome::RacedWrite;
        }
        let mut budget = spin_budget;
        while pins > 0 {
            if budget == 0 {
                return ShadowOutcome::Draining;
            }
            budget -= 1;
            std::hint::spin_loop();
            pins = self.pins();
        }
        // Re-check after the drain. A pinned writer bumps the version
        // *before* it unpins, and both are RMWs on this same word, so any
        // load that observes the zero pin count also observes the bump in
        // the word's modification order — a write that completed during
        // the drain cannot slip past this check.
        if !skip_check && self.word.load(Ordering::Acquire) / VERSION_STEP != expected {
            return ShadowOutcome::RacedWrite;
        }
        ShadowOutcome::Committed
    }

    /// Whether the shadow copy begun with `token` is still faithful:
    /// the word is open and no write bumped the version. Slow path only
    /// (descriptor mutex held). This is the commit check for shadow
    /// *write-backs* that never close the word at all (`flush_page`):
    /// because the flushed bytes only mark the copy clean, a racing
    /// write needs no quiescence wait — a stale flush is simply detected
    /// and the copy stays dirty.
    pub fn shadow_still_clean(&self, token: &ShadowToken) -> bool {
        let w = self.word.load(Ordering::Acquire);
        w & OPEN != 0 && w / VERSION_STEP == token.version
    }

    /// Current optimistic pin count (diagnostics and tests).
    pub fn pins(&self) -> u32 {
        (self.word.load(Ordering::Acquire) & PIN_MASK) as u32
    }

    /// Whether the word is currently open (diagnostics; racy by nature —
    /// only `try_pin` gives an authoritative answer).
    pub fn is_open(&self) -> bool {
        self.word.load(Ordering::Acquire) & OPEN != 0
    }

    /// Version counter (diagnostics and tests). Every *effective* open or
    /// close transition bumps it exactly once; idempotent re-opens and
    /// re-closes do not. It is what invalidates a pinner's CAS across a
    /// close/re-open, so tests assert its exact arithmetic.
    pub fn version(&self) -> u64 {
        self.word.load(Ordering::Acquire) / VERSION_STEP
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn closed_word_rejects_pins() {
        let w = PinWord::new();
        assert_eq!(w.try_pin(), PinAttempt::Closed);
        assert_eq!(w.pins(), 0);
        assert!(!w.is_open());
    }

    #[test]
    fn pin_unpin_round_trip() {
        let w = PinWord::new();
        w.open(7);
        assert!(w.is_open());
        assert_eq!(w.try_pin(), PinAttempt::Pinned(7));
        assert_eq!(w.try_pin(), PinAttempt::Pinned(7));
        assert_eq!(w.pins(), 2);
        w.unpin();
        w.unpin();
        assert_eq!(w.pins(), 0);
        // Extra unpins never underflow.
        w.unpin();
        assert_eq!(w.pins(), 0);
        assert!(w.is_open());
    }

    #[test]
    fn close_reports_outstanding_pins() {
        let w = PinWord::new();
        w.open(3);
        assert_eq!(w.try_pin(), PinAttempt::Pinned(3));
        assert_eq!(w.close(), 1);
        // Closed: no new pins.
        assert_eq!(w.try_pin(), PinAttempt::Closed);
        // The straggler drains; closing again sees zero.
        w.unpin();
        assert_eq!(w.close(), 0);
    }

    #[test]
    fn reopen_changes_payload() {
        let w = PinWord::new();
        w.open(1);
        assert_eq!(w.close(), 0);
        w.open(2);
        assert_eq!(w.try_pin(), PinAttempt::Pinned(2));
        w.unpin();
    }

    #[test]
    fn open_is_idempotent() {
        let w = PinWord::new();
        w.open(5);
        assert_eq!(w.try_pin(), PinAttempt::Pinned(5));
        w.open(5);
        assert_eq!(w.pins(), 1, "re-open preserves the pin count");
        w.unpin();
    }

    #[test]
    fn unpin_on_closed_word_with_pins_drains() {
        let w = PinWord::new();
        w.open(9);
        assert_eq!(w.try_pin(), PinAttempt::Pinned(9));
        assert_eq!(w.close(), 1);
        w.unpin();
        assert_eq!(w.pins(), 0);
        assert!(!w.is_open());
    }

    #[test]
    fn shadow_commit_on_quiescent_word() {
        let w = PinWord::new();
        w.open(4);
        let t = w.shadow_begin().expect("open word");
        // No readers, no writes: commit succeeds and leaves the word
        // closed (the caller installs the new copy before re-opening).
        assert_eq!(w.shadow_commit(&t, 0), ShadowOutcome::Committed);
        assert!(!w.is_open());
        assert_eq!(w.pins(), 0);
    }

    #[test]
    fn shadow_begin_requires_open_word() {
        let w = PinWord::new();
        assert!(w.shadow_begin().is_none());
    }

    #[test]
    fn shadow_commit_detects_racing_write() {
        let w = PinWord::new();
        w.open(4);
        let t = w.shadow_begin().unwrap();
        w.bump_version(); // a writer finished during the copy window
        assert_eq!(w.shadow_commit(&t, 16), ShadowOutcome::RacedWrite);
        // Abort: the caller re-opens and a fresh attempt can succeed.
        w.open(4);
        let t = w.shadow_begin().unwrap();
        assert_eq!(w.shadow_commit(&t, 0), ShadowOutcome::Committed);
    }

    #[test]
    fn shadow_commit_times_out_on_pinned_readers() {
        let w = PinWord::new();
        w.open(4);
        let t = w.shadow_begin().unwrap();
        assert_eq!(w.try_pin(), PinAttempt::Pinned(4));
        assert_eq!(w.shadow_commit(&t, 8), ShadowOutcome::Draining);
        assert!(!w.is_open(), "failed commit leaves the word closed");
        w.unpin();
        w.open(4);
        let t = w.shadow_begin().unwrap();
        assert_eq!(w.shadow_commit(&t, 0), ShadowOutcome::Committed);
    }

    #[test]
    fn shadow_commit_drains_within_budget() {
        let w = Arc::new(PinWord::new());
        w.open(2);
        assert_eq!(w.try_pin(), PinAttempt::Pinned(2));
        let t = w.shadow_begin().unwrap();
        let unpinner = {
            let w = Arc::clone(&w);
            std::thread::spawn(move || w.unpin())
        };
        // A generous budget outlasts the unpinning thread.
        assert_eq!(w.shadow_commit(&t, u32::MAX), ShadowOutcome::Committed);
        unpinner.join().unwrap();
    }

    #[test]
    fn shadow_still_clean_tracks_writes_and_closes() {
        let w = PinWord::new();
        w.open(6);
        let t = w.shadow_begin().unwrap();
        assert!(w.shadow_still_clean(&t));
        w.bump_version();
        assert!(!w.shadow_still_clean(&t), "a write dirties the token");
        w.close();
        assert!(!w.shadow_still_clean(&t), "a closed word is never clean");
    }

    #[test]
    fn bump_version_preserves_open_and_pins() {
        let w = PinWord::new();
        w.open(3);
        assert_eq!(w.try_pin(), PinAttempt::Pinned(3));
        let v = w.version();
        w.bump_version();
        assert_eq!(w.version(), v + 1);
        assert!(w.is_open());
        assert_eq!(w.pins(), 1);
        w.unpin();
    }

    /// A closer and many pinners race; the closer only proceeds on a zero
    /// count, and whenever it does, no pin may be granted until it
    /// re-opens. Model the protected state with a flag that must never be
    /// observed "torn".
    #[test]
    fn close_excludes_new_pins() {
        let w = Arc::new(PinWord::new());
        let resident = Arc::new(AtomicBool::new(true));
        let stop = Arc::new(AtomicBool::new(false));
        w.open(1);

        let pinners: Vec<_> = (0..4)
            .map(|_| {
                let w = Arc::clone(&w);
                let resident = Arc::clone(&resident);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut pinned = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        if let PinAttempt::Pinned(_) = w.try_pin() {
                            assert!(
                                resident.load(Ordering::Relaxed),
                                "pinned a non-resident copy"
                            );
                            std::hint::spin_loop();
                            assert!(
                                resident.load(Ordering::Relaxed),
                                "copy vanished under a pin"
                            );
                            w.unpin();
                            pinned += 1;
                        }
                    }
                    pinned
                })
            })
            .collect();

        // Miri explores this loop orders of magnitude slower; a handful of
        // transitions still exercises every code path.
        const TRANSITIONS: u32 = if cfg!(miri) { 10 } else { 200 };
        let mut transitions = 0u32;
        while transitions < TRANSITIONS {
            if w.close() == 0 {
                // No optimistic pins and none can be taken: transition.
                resident.store(false, Ordering::Relaxed);
                std::hint::spin_loop();
                resident.store(true, Ordering::Relaxed);
                transitions += 1;
            }
            w.open(1);
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        let total: u64 = pinners.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0, "pinners made progress");
        assert_eq!(w.close(), 0);
    }
}
