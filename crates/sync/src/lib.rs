//! Concurrency primitives used by the Spitfire buffer manager.
//!
//! The paper (§5.2) lists the concurrent building blocks Spitfire relies on:
//!
//! 1. a concurrent hash table mapping logical page identifiers to shared
//!    page descriptors — [`ConcurrentMap`];
//! 2. a concurrent bitmap backing the CLOCK replacement policy —
//!    [`AtomicBitmap`];
//! 3. lightweight latches for thread-safe page migration — [`RwLatch`];
//! 4. optimistic lock coupling for the B+Tree — [`VersionLatch`];
//! 5. the optimistic pin word that makes buffer hits latch-free —
//!    [`PinWord`].
//!
//! It also provides the HyMem-style NVM [`AdmissionQueue`] (paper §1, §6.5),
//! which Spitfire's probabilistic policy replaces but which the baseline
//! implementation needs.

#![warn(missing_docs)]
#![warn(clippy::all)]

/// Expand to `$strong` normally; under `cfg(spitfire_modelcheck)`, weaken
/// to `$weak` while the named [`spitfire_modelcheck::Mutation`] is active.
///
/// This is how the mutation *kill tests* seed deliberately broken protocol
/// variants (a downgraded memory ordering) into the production code
/// without a per-mutant build: the checker activates one mutation per
/// exploration and must detect it. Normal builds see only `$strong`.
macro_rules! mutant_ordering {
    ($mutation:ident, $strong:expr, $weak:expr) => {{
        #[cfg(spitfire_modelcheck)]
        {
            if spitfire_modelcheck::mutation_active(spitfire_modelcheck::Mutation::$mutation) {
                $weak
            } else {
                $strong
            }
        }
        #[cfg(not(spitfire_modelcheck))]
        {
            $strong
        }
    }};
}

mod admission;
pub mod atomic;
mod bitmap;
mod chashmap;
mod crc32;
mod latch;
pub mod lock;
mod optimistic;
mod padded;
mod pinword;

pub use admission::AdmissionQueue;
pub use bitmap::AtomicBitmap;
pub use chashmap::ConcurrentMap;
pub use crc32::crc32;
pub use latch::{LatchReadGuard, LatchWriteGuard, RwLatch};
pub use optimistic::{OptimisticError, VersionLatch};
pub use padded::{CachePadded, StripedCounter, CACHE_LINE};
pub use pinword::{PinAttempt, PinWord, ShadowOutcome, ShadowToken};
