//! Optimistic version latch for lock coupling (Leis et al., cited as \[24\]
//! in the paper §5.2).
//!
//! Readers never modify the latch word: they read the version, do their
//! work, and re-check the version. A concurrent writer bumps the version,
//! causing readers to restart. The B+Tree in `spitfire-index` couples these
//! latches down the tree, which is the "optimistic lock coupling" technique
//! the paper credits for reducing index contention once NVM removes most of
//! the I/O bottleneck.

use crate::atomic::{AtomicU64, Ordering};

/// Low bit 1 = write-locked; low bit 2 = node obsolete (unlinked); the rest
/// is the version counter.
const LOCKED: u64 = 0b01;
const OBSOLETE: u64 = 0b10;
const VERSION_STEP: u64 = 0b100;

/// Returned when an optimistic read or upgrade must restart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimisticError;

impl std::fmt::Display for OptimisticError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "optimistic validation failed; restart the operation")
    }
}

impl std::error::Error for OptimisticError {}

/// A version-based optimistic latch.
#[derive(Debug, Default)]
pub struct VersionLatch {
    word: AtomicU64,
}

impl VersionLatch {
    /// A fresh, unlocked latch at version zero.
    pub const fn new() -> Self {
        VersionLatch {
            word: AtomicU64::new(0),
        }
    }

    /// Begin an optimistic read: returns the current version, or an error if
    /// the latch is write-locked or the node is obsolete.
    pub fn read_lock(&self) -> Result<u64, OptimisticError> {
        let v = self.word.load(Ordering::Acquire);
        if v & (LOCKED | OBSOLETE) != 0 {
            return Err(OptimisticError);
        }
        Ok(v)
    }

    /// Validate an optimistic read begun at `version`.
    pub fn read_unlock(&self, version: u64) -> Result<(), OptimisticError> {
        if self.word.load(Ordering::Acquire) == version {
            Ok(())
        } else {
            Err(OptimisticError)
        }
    }

    /// Atomically upgrade an optimistic read at `version` to a write lock.
    pub fn upgrade(&self, version: u64) -> Result<(), OptimisticError> {
        // relaxed: failure means "restart the whole operation"; no state
        // read under the failed upgrade is ever used.
        self.word
            .compare_exchange(
                version,
                version | LOCKED,
                Ordering::Acquire,
                Ordering::Relaxed,
            )
            .map(|_| ())
            .map_err(|_| OptimisticError)
    }

    /// Acquire the write lock, spinning until it is free.
    ///
    /// Returns an error if the node became obsolete (the caller must
    /// restart from the parent).
    pub fn write_lock(&self) -> Result<(), OptimisticError> {
        let mut spins = 0u32;
        loop {
            // relaxed: spin-loop seed and CAS failure are both retried;
            // the successful acquire CAS orders the critical section.
            // (OBSOLETE is sticky, so acting on a stale sighting of it is
            // safe: the restart path re-validates from the parent.)
            let v = self.word.load(Ordering::Relaxed);
            if v & OBSOLETE != 0 {
                return Err(OptimisticError);
            }
            if v & LOCKED == 0
                && self
                    .word
                    // relaxed: failed CAS just re-seeds the spin loop
                    .compare_exchange_weak(v, v | LOCKED, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return Ok(());
            }
            spins += 1;
            if spins < 16 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Release a write lock, bumping the version so optimistic readers
    /// restart.
    pub fn write_unlock(&self) {
        // Clear LOCKED (+1 step wraps the low bits correctly because the
        // word was `version | LOCKED`).
        self.word
            .fetch_add(VERSION_STEP - LOCKED, Ordering::Release);
    }

    /// Release a write lock and mark the node obsolete (it was unlinked from
    /// the structure); readers and writers will restart from the parent.
    pub fn write_unlock_obsolete(&self) {
        self.word
            .fetch_add(VERSION_STEP - LOCKED + OBSOLETE, Ordering::Release);
    }

    /// Whether the node has been marked obsolete.
    pub fn is_obsolete(&self) -> bool {
        self.word.load(Ordering::Acquire) & OBSOLETE != 0
    }

    /// Whether the latch is currently write-locked (diagnostics only).
    pub fn is_locked(&self) -> bool {
        // relaxed: advisory snapshot for diagnostics; stale by the time
        // the caller looks at it.
        self.word.load(Ordering::Relaxed) & LOCKED != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn read_validates_when_no_writer() {
        let l = VersionLatch::new();
        let v = l.read_lock().unwrap();
        l.read_unlock(v).unwrap();
    }

    #[test]
    fn write_invalidates_concurrent_read() {
        let l = VersionLatch::new();
        let v = l.read_lock().unwrap();
        l.write_lock().unwrap();
        l.write_unlock();
        assert_eq!(l.read_unlock(v), Err(OptimisticError));
    }

    #[test]
    fn read_fails_while_locked() {
        let l = VersionLatch::new();
        l.write_lock().unwrap();
        assert_eq!(l.read_lock(), Err(OptimisticError));
        l.write_unlock();
        assert!(l.read_lock().is_ok());
    }

    #[test]
    fn upgrade_succeeds_only_on_same_version() {
        let l = VersionLatch::new();
        let v = l.read_lock().unwrap();
        l.upgrade(v).unwrap();
        l.write_unlock();
        // Version moved on; the old snapshot can no longer upgrade.
        assert_eq!(l.upgrade(v), Err(OptimisticError));
    }

    #[test]
    fn obsolete_rejects_everything() {
        let l = VersionLatch::new();
        l.write_lock().unwrap();
        l.write_unlock_obsolete();
        assert!(l.is_obsolete());
        assert_eq!(l.read_lock(), Err(OptimisticError));
        assert_eq!(l.write_lock(), Err(OptimisticError));
    }

    #[test]
    fn concurrent_writers_serialize() {
        const PER: u64 = if cfg!(miri) { 25 } else { 500 };
        let latch = Arc::new(VersionLatch::new());
        let value = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let latch = Arc::clone(&latch);
                let value = Arc::clone(&value);
                std::thread::spawn(move || {
                    for _ in 0..PER {
                        latch.write_lock().unwrap();
                        let v = value.load(Ordering::Relaxed);
                        value.store(v + 1, Ordering::Relaxed);
                        latch.write_unlock();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(value.load(Ordering::Relaxed), 4 * PER);
    }

    #[test]
    fn version_advances_monotonically() {
        let l = VersionLatch::new();
        let v0 = l.read_lock().unwrap();
        l.write_lock().unwrap();
        l.write_unlock();
        let v1 = l.read_lock().unwrap();
        assert!(v1 > v0);
        assert_eq!(v1 & (LOCKED | OBSOLETE), 0);
    }
}
