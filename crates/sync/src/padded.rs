//! Cache-line padding and striped counters for hot-path shared state.
//!
//! The lock-free hit path (manager `fetch_fast`) touches three kinds of
//! shared memory per operation: the page's optimistic pin word, the CLOCK
//! reference bit, and a handful of metrics counters. None of these need
//! to be *shared* cache lines — a pin word for page A and a pin word for
//! page B are logically independent — but without explicit layout control
//! they end up packed together and every CAS drags a line across cores
//! (false sharing). [`CachePadded`] gives a value its own 64-byte line;
//! [`StripedCounter`] splits one logical counter across per-thread-striped
//! lines so concurrent increments never collide.

use std::ops::{Deref, DerefMut};

use crate::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Cache-line size the layout types pad to. 64 bytes covers x86-64 and
/// most aarch64 parts; over-padding on exotic hardware only wastes bytes.
pub const CACHE_LINE: usize = 64;

/// Aligns (and therefore pads) `T` to its own 64-byte cache line.
///
/// Dereferences to `T`, so wrapped atomics keep their call syntax:
///
/// ```
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use spitfire_sync::CachePadded;
/// let c = CachePadded::new(AtomicU64::new(0));
/// c.fetch_add(1, Ordering::Relaxed);
/// assert_eq!(c.load(Ordering::Relaxed), 1);
/// assert_eq!(std::mem::align_of::<CachePadded<AtomicU64>>(), 64);
/// ```
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T>(T);

impl<T> CachePadded<T> {
    /// Wrap `value` on its own cache line.
    pub const fn new(value: T) -> Self {
        CachePadded(value)
    }

    /// Unwrap the inner value.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Stripes a monotone counter across [`STRIPES`](StripedCounter::STRIPES)
/// cache-line-padded cells.
///
/// Each thread hashes to a fixed cell (threads are assigned round-robin on
/// first use), so increments from different threads usually hit different
/// cache lines and never contend the way a single `AtomicU64` does at high
/// core counts. Reads ([`sum`](StripedCounter::sum)) fold all cells and are
/// O(stripes) — fine for snapshots, wrong for per-op reads.
#[derive(Debug, Default)]
pub struct StripedCounter {
    cells: [CachePadded<AtomicU64>; Self::STRIPES],
}

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Round-robin stripe assignment; reduced modulo `STRIPES` at use so
    /// one global counter serves any number of striped counters.
    // relaxed: the stripe id only spreads threads across cells; any value
    // is correct, so no ordering with other memory is needed.
    static THREAD_STRIPE: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed);
}

/// Stripe index for the calling thread.
///
/// Under the model checker, stripes derive from the model thread index
/// (folded onto two stripes so same-stripe collisions are explorable with
/// 2–3 threads) instead of the thread-local round-robin draw, which would
/// not be replay-deterministic across executions.
fn thread_stripe() -> usize {
    #[cfg(spitfire_modelcheck)]
    if let Some(t) = spitfire_modelcheck::current_thread_index() {
        return t % 2;
    }
    THREAD_STRIPE.with(|s| *s) % StripedCounter::STRIPES
}

impl StripedCounter {
    /// Number of padded cells. Eight lines absorb the thread counts the
    /// benches drive (32) with at most 4 threads per line.
    pub const STRIPES: usize = 8;

    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` on the calling thread's stripe.
    #[inline]
    pub fn add(&self, n: u64) {
        let s = thread_stripe();
        // Mutant CounterAddSplit tears the RMW into load-then-store; the
        // merge model check must catch the lost same-stripe increment.
        // relaxed: mutant code — the breakage under test is the torn
        // RMW, not the ordering.
        #[cfg(spitfire_modelcheck)]
        if spitfire_modelcheck::mutation_active(spitfire_modelcheck::Mutation::CounterAddSplit) {
            let cur = self.cells[s].load(Ordering::Relaxed);
            self.cells[s].store(cur + n, Ordering::Relaxed);
            return;
        }
        // relaxed: counters are monotone and only folded by `sum`; no
        // other memory is published through them.
        self.cells[s].fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one on the calling thread's stripe.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Fold all stripes into the logical total.
    pub fn sum(&self) -> u64 {
        // relaxed: a statistical snapshot; stripes are folded without any
        // cross-stripe consistency claim.
        self.cells.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Zero every stripe. Concurrent increments may survive the reset,
    /// exactly as with `AtomicU64::store(0)`.
    pub fn reset(&self) {
        for c in &self.cells {
            // relaxed: counters publish nothing; racing increments may
            // survive the reset by design.
            c.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn padded_value_is_line_aligned() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), CACHE_LINE);
        assert_eq!(std::mem::size_of::<CachePadded<u8>>(), CACHE_LINE);
        // An array of padded values puts each element on its own line.
        let arr = [CachePadded::new(0u8), CachePadded::new(1u8)];
        let a = &*arr[0] as *const u8 as usize;
        let b = &*arr[1] as *const u8 as usize;
        assert_eq!(b - a, CACHE_LINE);
    }

    #[test]
    fn padded_derefs_both_ways() {
        let mut c = CachePadded::new(7u32);
        *c += 1;
        assert_eq!(*c, 8);
        assert_eq!(c.into_inner(), 8);
    }

    #[test]
    fn striped_counter_sums_across_threads() {
        const PER: u64 = if cfg!(miri) { 50 } else { 1000 };
        let c = Arc::new(StripedCounter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..PER {
                        c.incr();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.sum(), 8 * PER);
        c.reset();
        assert_eq!(c.sum(), 0);
    }

    #[test]
    fn striped_counter_add_accumulates() {
        let c = StripedCounter::new();
        c.add(5);
        c.add(7);
        assert_eq!(c.sum(), 12);
    }
}
