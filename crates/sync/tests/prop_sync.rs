//! Property tests for the concurrency primitives (sequential model
//! equivalence; the concurrent behaviour is covered by unit tests).

use proptest::prelude::*;
use spitfire_sync::{AdmissionQueue, AtomicBitmap, ConcurrentMap};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The atomic bitmap must match a boolean-vector model.
    #[test]
    fn bitmap_matches_model(
        len in 1..300usize,
        ops in proptest::collection::vec((0..300usize, 0..3u8), 1..200),
    ) {
        let bitmap = AtomicBitmap::new(len);
        let mut model = vec![false; len];
        for &(bit, op) in &ops {
            let bit = bit % len;
            match op {
                0 => prop_assert_eq!(bitmap.set(bit), std::mem::replace(&mut model[bit], true)),
                1 => prop_assert_eq!(bitmap.clear(bit), std::mem::replace(&mut model[bit], false)),
                _ => prop_assert_eq!(bitmap.get(bit), model[bit]),
            }
        }
        prop_assert_eq!(bitmap.count_ones(), model.iter().filter(|b| **b).count());
    }

    /// `acquire_first_clear` must claim exactly the free bits, each once.
    #[test]
    fn bitmap_acquire_claims_every_free_bit(
        len in 1..200usize,
        preset in proptest::collection::vec(0..200usize, 0..50),
        hint in 0..200usize,
    ) {
        let bitmap = AtomicBitmap::new(len);
        let mut expected_free = len;
        let mut seen = std::collections::HashSet::new();
        for &bit in &preset {
            let bit = bit % len;
            if !bitmap.set(bit) && seen.insert(bit) {
                expected_free -= 1;
            }
        }
        let mut claimed = Vec::new();
        while let Some(bit) = bitmap.acquire_first_clear(hint % len) {
            prop_assert!(bit < len);
            claimed.push(bit);
        }
        claimed.sort_unstable();
        claimed.dedup();
        prop_assert_eq!(claimed.len(), expected_free);
    }

    /// The padded (byte-per-bit) bitmap layout must be observationally
    /// identical to the dense one under any op sequence — same returns
    /// from set/clear/get/try_acquire, same acquisition order, same
    /// popcount. The layouts share the index math, so a divergence means
    /// the stride generalization broke one of them.
    #[test]
    fn bitmap_padded_matches_dense(
        len in 1..300usize,
        ops in proptest::collection::vec((0..300usize, 0..6u8), 1..200),
    ) {
        let dense = AtomicBitmap::new(len);
        let padded = AtomicBitmap::new_padded(len);
        prop_assert_eq!(dense.len(), padded.len());
        for &(bit, op) in &ops {
            let bit = bit % len;
            match op {
                0 => prop_assert_eq!(padded.set(bit), dense.set(bit)),
                1 => prop_assert_eq!(padded.clear(bit), dense.clear(bit)),
                2 => prop_assert_eq!(padded.get(bit), dense.get(bit)),
                3 => prop_assert_eq!(padded.try_acquire(bit), dense.try_acquire(bit)),
                4 => prop_assert_eq!(
                    padded.acquire_first_clear(bit),
                    dense.acquire_first_clear(bit)
                ),
                _ => {
                    padded.clear_all();
                    dense.clear_all();
                }
            }
            prop_assert_eq!(padded.count_ones(), dense.count_ones());
        }
    }

    /// The concurrent map must match `HashMap` sequentially.
    #[test]
    fn concurrent_map_matches_model(
        ops in proptest::collection::vec((0..64u64, 0..4u8, any::<u64>()), 1..200),
    ) {
        let map: ConcurrentMap<u64, u64> = ConcurrentMap::new();
        let mut model = std::collections::HashMap::new();
        for &(key, op, value) in &ops {
            match op {
                0 => prop_assert_eq!(map.insert(key, value), model.insert(key, value)),
                1 => prop_assert_eq!(map.remove(&key), model.remove(&key)),
                2 => prop_assert_eq!(map.get(&key), model.get(&key).copied()),
                _ => {
                    let got = map.get_or_insert_with(key, || value);
                    let want = *model.entry(key).or_insert(value);
                    prop_assert_eq!(got, want);
                }
            }
        }
        prop_assert_eq!(map.len(), model.len());
    }

    /// Admission-queue liveness and FIFO properties: an id is admitted iff
    /// it is among the most recent `capacity` denied ids (a model of the
    /// HyMem queue semantics).
    #[test]
    fn admission_queue_matches_model(
        capacity in 1..16usize,
        pids in proptest::collection::vec(0..24u64, 1..200),
    ) {
        let queue = AdmissionQueue::new(capacity);
        // Model: FIFO of denied ids with stale-slot reclamation, mirroring
        // the documented semantics.
        let mut fifo: std::collections::VecDeque<u64> = Default::default();
        let mut members: std::collections::HashSet<u64> = Default::default();
        for &pid in &pids {
            let model_admit = members.remove(&pid);
            if !model_admit {
                while fifo.len() >= capacity {
                    let Some(old) = fifo.pop_front() else { break };
                    if members.remove(&old) {
                        break;
                    }
                }
                fifo.push_back(pid);
                members.insert(pid);
            }
            prop_assert_eq!(queue.consider(pid), model_admit, "pid {}", pid);
            prop_assert_eq!(queue.len(), members.len());
        }
    }
}
