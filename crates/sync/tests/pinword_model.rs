//! Property-based model checking for [`spitfire_sync::PinWord`]: for any
//! sequence of open/close/pin/unpin transitions, the word must behave
//! exactly like the obvious sequential model `{open, pins, payload}` —
//! the single-threaded semantics the concurrent protocol is built on.

use proptest::prelude::*;
use spitfire_sync::{PinAttempt, PinWord};

#[derive(Debug, Clone, Copy)]
enum Step {
    /// Open the word with a payload (idempotent when already open).
    Open(u32),
    /// Close the word; yields the optimistic pin count at close time.
    Close,
    /// Attempt an optimistic pin.
    TryPin,
    /// Release an optimistic pin (no-op at zero).
    Unpin,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        2 => any::<u32>().prop_map(Step::Open),
        2 => Just(Step::Close),
        4 => Just(Step::TryPin),
        3 => Just(Step::Unpin),
    ]
}

/// The reference model: what a PinWord is, minus the atomics.
#[derive(Debug, Default)]
struct Model {
    open: bool,
    pins: u32,
    payload: u32,
    /// Bumped once per *effective* open/close transition (idempotent
    /// re-opens and re-closes leave it alone) — the exact arithmetic
    /// `PinWord::version` documents.
    version: u64,
}

proptest! {
    #[test]
    fn pin_word_matches_sequential_model(steps in proptest::collection::vec(step_strategy(), 1..200)) {
        let word = PinWord::new();
        let mut model = Model::default();
        for step in steps {
            match step {
                Step::Open(p) => {
                    word.open(p);
                    // Opening always refreshes the payload (idempotent on
                    // the OPEN bit only); only a closed→open transition
                    // bumps the version.
                    if !model.open {
                        model.version += 1;
                    }
                    model.open = true;
                    model.payload = p;
                }
                Step::Close => {
                    let reported = word.close();
                    prop_assert_eq!(reported, model.pins, "close must report pins");
                    if model.open {
                        model.version += 1;
                    }
                    model.open = false;
                }
                Step::TryPin => match word.try_pin() {
                    PinAttempt::Pinned(p) => {
                        prop_assert!(model.open, "pinned a closed word");
                        prop_assert_eq!(p, model.payload, "pin observed stale payload");
                        model.pins += 1;
                    }
                    PinAttempt::Closed => {
                        prop_assert!(!model.open, "refused a pin on an open word");
                    }
                    PinAttempt::Raced => {
                        prop_assert!(false, "no race possible single-threaded");
                    }
                },
                Step::Unpin => {
                    word.unpin();
                    model.pins = model.pins.saturating_sub(1);
                }
            }
            prop_assert_eq!(word.is_open(), model.open);
            prop_assert_eq!(word.pins(), model.pins);
            prop_assert_eq!(word.version(), model.version, "version must count effective transitions");
        }
    }
}
